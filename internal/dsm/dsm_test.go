package dsm

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// dsmWorld is a manager plus n agents, each on its own node.
type dsmWorld struct {
	manager *Manager
	agents  []*Agent
}

func newDSMWorld(t *testing.T, nAgents int, mOpts ...ManagerOption) *dsmWorld {
	t.Helper()
	net := netsim.New()
	t.Cleanup(net.Close)
	mk := func(id wire.NodeID) *core.Runtime {
		ep, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		node := kernel.NewNode(ep)
		t.Cleanup(func() { node.Close() })
		ktx, err := node.NewContext()
		if err != nil {
			t.Fatal(err)
		}
		return core.NewRuntime(ktx)
	}
	w := &dsmWorld{manager: NewManager(mk(1), mOpts...)}
	for i := 0; i < nAgents; i++ {
		w.agents = append(w.agents, NewAgent(mk(wire.NodeID(i+2)), w.manager.Addr()))
	}
	return w
}

func TestReadFaultThenLocal(t *testing.T) {
	w := newDSMWorld(t, 1, WithPageSize(64))
	a := w.agents[0]
	ctx := context.Background()

	page, err := a.Read(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(page) != 64 || !bytes.Equal(page, make([]byte, 64)) {
		t.Errorf("fresh page = %v", page[:8])
	}
	for i := 0; i < 9; i++ {
		if _, err := a.Read(ctx, 1); err != nil {
			t.Fatal(err)
		}
	}
	st := a.Stats()
	if st.ReadFaults != 1 || st.LocalReads != 9 {
		t.Errorf("stats = %+v", st)
	}
}

func TestWriteThenReadBack(t *testing.T) {
	w := newDSMWorld(t, 2, WithPageSize(32))
	ctx := context.Background()
	a, b := w.agents[0], w.agents[1]

	if err := a.WriteAt(ctx, 5, 0, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := b.ReadAt(ctx, 5, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Errorf("b read %q", got)
	}
}

func TestRepeatedWritesAreLocal(t *testing.T) {
	w := newDSMWorld(t, 1, WithPageSize(32))
	a := w.agents[0]
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if err := a.Write(ctx, 1, func(p []byte) { p[0]++ }); err != nil {
			t.Fatal(err)
		}
	}
	st := a.Stats()
	if st.WriteFaults != 1 || st.LocalWrites != 9 {
		t.Errorf("stats = %+v", st)
	}
	page, err := a.Read(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if page[0] != 10 {
		t.Errorf("page[0] = %d", page[0])
	}
}

func TestWriteInvalidatesReaders(t *testing.T) {
	w := newDSMWorld(t, 3, WithPageSize(16))
	ctx := context.Background()
	a, b, c := w.agents[0], w.agents[1], w.agents[2]

	if err := a.WriteAt(ctx, 1, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	// b and c read (downgrading a, joining the copyset).
	for _, ag := range []*Agent{b, c} {
		got, err := ag.ReadAt(ctx, 1, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != 1 {
			t.Fatalf("read %d", got[0])
		}
	}
	// a writes again: b and c must fault on their next read and see v2.
	if err := a.WriteAt(ctx, 1, 0, []byte{2}); err != nil {
		t.Fatal(err)
	}
	for i, ag := range []*Agent{b, c} {
		got, err := ag.ReadAt(ctx, 1, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != 2 {
			t.Errorf("agent %d read %d after invalidation, want 2", i, got[0])
		}
	}
	bst := b.Stats()
	if bst.Invalidations == 0 {
		t.Error("b was never invalidated")
	}
	if bst.ReadFaults != 2 {
		t.Errorf("b read faults = %d, want 2", bst.ReadFaults)
	}
	mst := w.manager.Stats()
	if mst.Invalidations < 2 {
		t.Errorf("manager invalidations = %d", mst.Invalidations)
	}
}

func TestOwnershipMigratesBetweenWriters(t *testing.T) {
	w := newDSMWorld(t, 2, WithPageSize(16))
	ctx := context.Background()
	a, b := w.agents[0], w.agents[1]

	// Ping-pong writes: each handoff recalls the previous owner.
	for i := byte(0); i < 6; i++ {
		writer := a
		if i%2 == 1 {
			writer = b
		}
		if err := writer.Write(ctx, 1, func(p []byte) { p[0] = i }); err != nil {
			t.Fatal(err)
		}
	}
	got, err := a.ReadAt(ctx, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 5 {
		t.Errorf("final value = %d, want 5", got[0])
	}
	if mst := w.manager.Stats(); mst.Recalls < 4 {
		t.Errorf("manager recalls = %d, want ping-pong", mst.Recalls)
	}
}

func TestDistinctPagesIndependent(t *testing.T) {
	w := newDSMWorld(t, 2, WithPageSize(16))
	ctx := context.Background()
	a, b := w.agents[0], w.agents[1]
	if err := a.WriteAt(ctx, 1, 0, []byte{11}); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteAt(ctx, 2, 0, []byte{22}); err != nil {
		t.Fatal(err)
	}
	// Writing page 2 must not disturb a's exclusive hold on page 1.
	if err := a.Write(ctx, 1, func(p []byte) { p[1] = 1 }); err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.WriteFaults != 1 {
		t.Errorf("a write faults = %d, want 1 (page 1 still exclusive)", st.WriteFaults)
	}
}

func TestConcurrentWritersConverge(t *testing.T) {
	w := newDSMWorld(t, 4, WithPageSize(8))
	ctx := context.Background()
	var wg sync.WaitGroup
	const perAgent = 25
	for _, ag := range w.agents {
		wg.Add(1)
		go func(ag *Agent) {
			defer wg.Done()
			for i := 0; i < perAgent; i++ {
				err := ag.Write(ctx, 7, func(p []byte) {
					// 64-bit counter in the page.
					v := uint64(p[0]) | uint64(p[1])<<8 | uint64(p[2])<<16 | uint64(p[3])<<24
					v++
					p[0], p[1], p[2], p[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(ag)
	}
	wg.Wait()
	page, err := w.agents[0].Read(ctx, 7)
	if err != nil {
		t.Fatal(err)
	}
	got := uint64(page[0]) | uint64(page[1])<<8 | uint64(page[2])<<16 | uint64(page[3])<<24
	want := uint64(len(w.agents) * perAgent)
	if got != want {
		t.Errorf("counter = %d, want %d (lost updates)", got, want)
	}
}

func TestRangeErrors(t *testing.T) {
	w := newDSMWorld(t, 1, WithPageSize(8))
	ctx := context.Background()
	a := w.agents[0]
	if _, err := a.ReadAt(ctx, 1, 4, 8); err == nil {
		t.Error("out-of-range ReadAt succeeded")
	}
	if err := a.WriteAt(ctx, 1, 7, []byte{1, 2}); err == nil {
		t.Error("out-of-range WriteAt succeeded")
	}
	if _, err := a.ReadAt(ctx, 1, -1, 2); err == nil {
		t.Error("negative offset succeeded")
	}
}

func TestPageMsgRoundTrip(t *testing.T) {
	buf := pageMsg(42, []byte("abc"))
	page, data, err := decodePageMsg(buf)
	if err != nil {
		t.Fatal(err)
	}
	if page != 42 || string(data) != "abc" {
		t.Errorf("round-trip = %d %q", page, data)
	}
	for i := 0; i < len(buf); i++ {
		if _, _, err := decodePageMsg(buf[:i]); err == nil {
			t.Errorf("accepted %d-byte prefix", i)
		}
	}
}

func TestStateString(t *testing.T) {
	if stateInvalid.String() != "invalid" || stateShared.String() != "shared" ||
		stateExclusive.String() != "exclusive" || state(9).String() != "state(9)" {
		t.Error("state.String mismatch")
	}
}

func TestDeadOwnerRecovered(t *testing.T) {
	// An agent that owned a page exclusively dies without surrendering it.
	// The next fault's recall times out; the manager falls back to its own
	// last copy (fail-stop: the dead owner's unsynced writes are lost, but
	// the page stays available).
	w := newDSMWorld(t, 2, WithPageSize(8), WithCoherenceTimeout(100*time.Millisecond))
	ctx := context.Background()
	a, b := w.agents[0], w.agents[1]

	if err := a.WriteAt(ctx, 1, 0, []byte{7}); err != nil {
		t.Fatal(err)
	}
	// Kill a without any protocol goodbye.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// b's read recalls a, times out, and proceeds. The value observed is
	// the manager's copy from before a's exclusive grant (a's write is
	// lost — fail-stop semantics, asserted here so the contract is pinned).
	start := time.Now()
	got, err := b.ReadAt(ctx, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("dead-owner recovery took %v", elapsed)
	}
	if got[0] != 0 {
		t.Errorf("read %d; want 0 (dead owner's unsynced write must not resurrect)", got[0])
	}
	// The page is fully writable again.
	if err := b.WriteAt(ctx, 1, 0, []byte{9}); err != nil {
		t.Fatal(err)
	}
	got, err = b.ReadAt(ctx, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 9 {
		t.Errorf("post-recovery read = %d", got[0])
	}
}

func BenchmarkDSMLocalRead(b *testing.B) {
	w := benchDSMWorld(b)
	ctx := context.Background()
	if _, err := w.agents[0].Read(ctx, 1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.agents[0].Read(ctx, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDSMWriteFaultPingPong(b *testing.B) {
	w := benchDSMWorld(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ag := w.agents[i%2]
		if err := ag.Write(ctx, 1, func(p []byte) { p[0]++ }); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDSMWorld mirrors newDSMWorld for benchmarks.
func benchDSMWorld(b *testing.B) *dsmWorld {
	b.Helper()
	net := netsim.New()
	b.Cleanup(net.Close)
	mk := func(id wire.NodeID) *core.Runtime {
		ep, err := net.Attach(id)
		if err != nil {
			b.Fatal(err)
		}
		node := kernel.NewNode(ep)
		b.Cleanup(func() { node.Close() })
		ktx, err := node.NewContext()
		if err != nil {
			b.Fatal(err)
		}
		return core.NewRuntime(ktx)
	}
	w := &dsmWorld{manager: NewManager(mk(1), WithPageSize(64))}
	for i := 0; i < 2; i++ {
		w.agents = append(w.agents, NewAgent(mk(wire.NodeID(i+2)), w.manager.Addr()))
	}
	return w
}
