package dsm

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/wire"
)

// Agent is one node's attachment to the shared address space: a page
// table of local copies plus the coherence object the manager calls back
// into. Read/Write on warm pages touch no wires.
type Agent struct {
	rt      *core.Runtime
	manager wire.ObjAddr
	id      wire.ObjectID

	mu    sync.Mutex
	pages map[PageID]*pageCopy

	stats statsCell
}

type pageCopy struct {
	mu    sync.Mutex
	state state
	data  []byte
	// gen counts losses of the copy (recall/invalidate). A fault that was
	// in flight while gen moved must not install its now-stale result.
	gen uint64
}

// NewAgent attaches an agent to the manager at managerAddr.
func NewAgent(rt *core.Runtime, managerAddr wire.ObjAddr) *Agent {
	a := &Agent{
		rt:      rt,
		manager: managerAddr,
		pages:   make(map[PageID]*pageCopy),
	}
	srv := rpc.NewServer(rpc.HandlerFunc(a.handle))
	a.id = rt.Kernel().Register(srv)
	return a
}

// Self is the agent's coherence address (sent with every fault so the
// manager can call back).
func (a *Agent) Self() wire.ObjAddr {
	return wire.ObjAddr{Addr: a.rt.Addr(), Object: a.id}
}

// Stats returns a snapshot of the agent's counters.
func (a *Agent) Stats() Stats { return a.stats.snapshot() }

func (a *Agent) page(id PageID) *pageCopy {
	a.mu.Lock()
	defer a.mu.Unlock()
	p, ok := a.pages[id]
	if !ok {
		p = &pageCopy{}
		a.pages[id] = p
	}
	return p
}

// Read returns a copy of the page, faulting it in if necessary. The page
// lock is NOT held across the fault round trip: a concurrent recall or
// invalidation proceeds immediately and bumps the page generation, which
// makes the in-flight fault skip installing its (now stale) result — the
// returned bytes are still valid at the read's linearization point.
func (a *Agent) Read(ctx context.Context, id PageID) ([]byte, error) {
	p := a.page(id)
	p.mu.Lock()
	if p.state != stateInvalid {
		data := append([]byte(nil), p.data...)
		p.mu.Unlock()
		a.stats.add(func(s *Stats) { s.LocalReads++ })
		return data, nil
	}
	gen := p.gen
	p.mu.Unlock()

	a.stats.add(func(s *Stats) { s.ReadFaults++ })
	reply, err := a.rt.Client().Call(ctx, a.manager, kindRead, pageMsg(id, wire.AppendObjAddr(nil, a.Self())))
	if err != nil {
		return nil, core.RemoteToInvokeError("dsm.read", err)
	}
	_, data, err := decodePageMsg(reply)
	if err != nil {
		return nil, err
	}
	out := append([]byte(nil), data...)
	p.mu.Lock()
	if p.gen == gen && p.state == stateInvalid {
		p.state = stateShared
		p.data = append(p.data[:0], data...)
	}
	p.mu.Unlock()
	return out, nil
}

// Write mutates the page under exclusive ownership: fn receives the page
// bytes in place. If the agent already holds the page exclusively, no
// messages are exchanged at all. Like Read, the fault round trip runs
// without the page lock; if ownership was lost again while the grant was
// in flight (generation moved), the write re-faults rather than mutating
// a stale copy.
func (a *Agent) Write(ctx context.Context, id PageID, fn func(page []byte)) error {
	p := a.page(id)
	for {
		p.mu.Lock()
		if p.state == stateExclusive {
			fn(p.data)
			p.mu.Unlock()
			a.stats.add(func(s *Stats) { s.LocalWrites++ })
			return nil
		}
		gen := p.gen
		p.mu.Unlock()

		a.stats.add(func(s *Stats) { s.WriteFaults++ })
		reply, err := a.rt.Client().Call(ctx, a.manager, kindWrite, pageMsg(id, wire.AppendObjAddr(nil, a.Self())))
		if err != nil {
			return core.RemoteToInvokeError("dsm.write", err)
		}
		_, data, err := decodePageMsg(reply)
		if err != nil {
			return err
		}
		p.mu.Lock()
		if p.gen != gen {
			// Ownership moved while the grant travelled; try again.
			p.mu.Unlock()
			continue
		}
		p.state = stateExclusive
		p.data = append(p.data[:0], data...)
		fn(p.data)
		p.mu.Unlock()
		return nil
	}
}

// ReadAt copies out a sub-range of a page.
func (a *Agent) ReadAt(ctx context.Context, id PageID, off, n int) ([]byte, error) {
	page, err := a.Read(ctx, id)
	if err != nil {
		return nil, err
	}
	if off < 0 || n < 0 || off+n > len(page) {
		return nil, fmt.Errorf("%w: [%d:%d] of %d", ErrBadPage, off, off+n, len(page))
	}
	return page[off : off+n], nil
}

// WriteAt overwrites a sub-range of a page.
func (a *Agent) WriteAt(ctx context.Context, id PageID, off int, b []byte) error {
	var rangeErr error
	err := a.Write(ctx, id, func(page []byte) {
		if off < 0 || off+len(b) > len(page) {
			rangeErr = fmt.Errorf("%w: [%d:%d] of %d", ErrBadPage, off, off+len(b), len(page))
			return
		}
		copy(page[off:], b)
	})
	if err != nil {
		return err
	}
	return rangeErr
}

// handle processes manager callbacks: recalls, downgrades, invalidations.
func (a *Agent) handle(req *rpc.Request) (wire.Kind, []byte, []byte) {
	id, _, err := decodePageMsg(req.Frame.Payload)
	if err != nil {
		return 0, nil, core.EncodeInvokeError("dsm", err)
	}
	p := a.page(id)
	p.mu.Lock()
	defer p.mu.Unlock()
	switch req.Kind {
	case kindRecall:
		// An empty reply tells the manager we did not actually hold the
		// page (a reordered recall); it keeps its own copy then.
		var data []byte
		if p.state == stateExclusive {
			data = append([]byte(nil), p.data...)
		}
		p.state = stateInvalid
		p.data = nil
		p.gen++
		a.stats.add(func(s *Stats) { s.Recalls++ })
		return kindRecall, pageMsg(id, data), nil
	case kindDowngrade:
		var data []byte
		if p.state == stateExclusive {
			data = append([]byte(nil), p.data...)
			p.state = stateShared
		}
		a.stats.add(func(s *Stats) { s.Downgrades++ })
		return kindDowngrade, pageMsg(id, data), nil
	case kindInval:
		p.state = stateInvalid
		p.data = nil
		p.gen++
		a.stats.add(func(s *Stats) { s.Invalidations++ })
		return kindInval, nil, nil
	default:
		return 0, nil, core.EncodeInvokeError("dsm", core.Errorf(core.CodeInternal, "dsm", "unexpected kind %v", req.Kind))
	}
}

// Close detaches the agent's coherence object. Pages it owned exclusively
// are recovered by the manager's fail-stop path on the next fault.
func (a *Agent) Close() error {
	a.rt.Kernel().Unregister(a.id)
	return nil
}
