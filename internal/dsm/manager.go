package dsm

import (
	"context"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/wire"
)

// defaultCoherenceTimeout bounds one recall/downgrade/invalidate round
// unless WithCoherenceTimeout overrides it.
const defaultCoherenceTimeout = 5 * time.Second

// ManagerOption configures a Manager.
type ManagerOption func(*Manager)

// WithCoherenceTimeout overrides how long the manager waits for an agent
// to answer a recall/downgrade/invalidate before presuming it dead
// (default 5s; tests shrink it to exercise the fail-stop path quickly).
func WithCoherenceTimeout(d time.Duration) ManagerOption {
	return func(m *Manager) {
		if d > 0 {
			m.coherenceTimeout = d
		}
	}
}

// WithPageSize sets the page size in bytes (default DefaultPageSize).
func WithPageSize(n int) ManagerOption {
	return func(m *Manager) {
		if n > 0 {
			m.pageSize = n
		}
	}
}

// Manager is the central page manager: the authority on ownership and
// copysets, and the keeper of the page bytes whenever no node owns them
// exclusively.
type Manager struct {
	rt               *core.Runtime
	pageSize         int
	coherenceTimeout time.Duration
	id               wire.ObjectID

	mu    sync.Mutex
	pages map[PageID]*pageEntry

	stats statsCell
}

type pageEntry struct {
	mu      sync.Mutex
	owner   wire.ObjAddr // zero when nobody holds Exclusive
	copyset map[wire.ObjAddr]bool
	data    []byte // authoritative when owner is zero
}

// NewManager installs a page manager in rt's context.
func NewManager(rt *core.Runtime, opts ...ManagerOption) *Manager {
	m := &Manager{
		rt:               rt,
		pageSize:         DefaultPageSize,
		coherenceTimeout: defaultCoherenceTimeout,
		pages:            make(map[PageID]*pageEntry),
	}
	for _, o := range opts {
		o(m)
	}
	srv := rpc.NewServer(rpc.HandlerFunc(m.handle))
	m.id = rt.Kernel().Register(srv)
	return m
}

// Addr is the manager's control address; agents attach to it.
func (m *Manager) Addr() wire.ObjAddr {
	return wire.ObjAddr{Addr: m.rt.Addr(), Object: m.id}
}

// PageSize reports the configured page size.
func (m *Manager) PageSize() int { return m.pageSize }

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() Stats { return m.stats.snapshot() }

func (m *Manager) entry(page PageID) *pageEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.pages[page]
	if !ok {
		e = &pageEntry{
			copyset: make(map[wire.ObjAddr]bool),
			data:    make([]byte, m.pageSize),
		}
		m.pages[page] = e
	}
	return e
}

func (m *Manager) handle(req *rpc.Request) (wire.Kind, []byte, []byte) {
	// A fault request's data field carries the faulting agent's coherence
	// object address (where recalls/invalidations will be sent).
	page, agentData, err := decodePageMsg(req.Frame.Payload)
	if err != nil {
		return 0, nil, core.EncodeInvokeError("dsm", err)
	}
	agentAddr, _, err := wire.DecodeObjAddr(agentData)
	if err != nil {
		return 0, nil, core.EncodeInvokeError("dsm", err)
	}

	switch req.Kind {
	case kindRead:
		data, err := m.readFault(page, agentAddr)
		if err != nil {
			return 0, nil, core.EncodeInvokeError("dsm", err)
		}
		return kindRead, pageMsg(page, data), nil
	case kindWrite:
		data, err := m.writeFault(page, agentAddr)
		if err != nil {
			return 0, nil, core.EncodeInvokeError("dsm", err)
		}
		return kindWrite, pageMsg(page, data), nil
	default:
		return 0, nil, core.EncodeInvokeError("dsm", core.Errorf(core.CodeInternal, "dsm", "unexpected kind %v", req.Kind))
	}
}

// readFault serves a read miss: downgrade the owner if there is one, add
// the reader to the copyset, return the latest bytes.
func (m *Manager) readFault(page PageID, reader wire.ObjAddr) ([]byte, error) {
	e := m.entry(page)
	e.mu.Lock()
	defer e.mu.Unlock()
	m.stats.add(func(s *Stats) { s.ReadFaults++ })

	if !e.owner.IsZero() && e.owner != reader {
		data, err := m.call(e.owner, kindDowngrade, pageMsg(page, nil))
		if err == nil {
			_, fresh, derr := decodePageMsg(data)
			// An empty body means the owner no longer held the page
			// (reordered coherence traffic); our copy stands.
			if derr == nil && len(fresh) == len(e.data) {
				e.data = append(e.data[:0], fresh...)
			}
			e.copyset[e.owner] = true
		}
		// On error the owner is presumed dead; its writes are lost and the
		// manager's last copy stands (fail-stop semantics).
		e.owner = wire.ObjAddr{}
		m.stats.add(func(s *Stats) { s.Downgrades++ })
	}
	e.copyset[reader] = true
	return append([]byte(nil), e.data...), nil
}

// writeFault serves a write miss: recall the owner, invalidate the
// copyset, grant exclusive ownership.
func (m *Manager) writeFault(page PageID, writer wire.ObjAddr) ([]byte, error) {
	e := m.entry(page)
	e.mu.Lock()
	defer e.mu.Unlock()
	m.stats.add(func(s *Stats) { s.WriteFaults++ })

	if !e.owner.IsZero() && e.owner != writer {
		data, err := m.call(e.owner, kindRecall, pageMsg(page, nil))
		if err == nil {
			_, fresh, derr := decodePageMsg(data)
			if derr == nil && len(fresh) == len(e.data) {
				e.data = append(e.data[:0], fresh...)
			}
		}
		e.owner = wire.ObjAddr{}
		m.stats.add(func(s *Stats) { s.Recalls++ })
	}
	// Invalidate every reader except the writer itself.
	var wg sync.WaitGroup
	for member := range e.copyset {
		if member == writer {
			continue
		}
		wg.Add(1)
		go func(member wire.ObjAddr) {
			defer wg.Done()
			_, _ = m.call(member, kindInval, pageMsg(page, nil))
		}(member)
		m.stats.add(func(s *Stats) { s.Invalidations++ })
	}
	wg.Wait()
	e.copyset = make(map[wire.ObjAddr]bool)
	e.owner = writer
	return append([]byte(nil), e.data...), nil
}

func (m *Manager) call(dst wire.ObjAddr, kind wire.Kind, payload []byte) ([]byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), m.coherenceTimeout)
	defer cancel()
	return m.rt.Client().Call(ctx, dst, kind, payload)
}
