package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/cache"
	"repro/internal/netsim"
)

// The machine-readable benchmark report behind `proxybench -json`: a
// point-in-time measurement of the invocation fast path (the E1 ladder
// and the E2 cache hit/write cells), with latency quantiles and
// allocation counts per row, next to the frozen pre-optimization baseline
// so a regression — or the size of an improvement — is visible in one
// file without digging through git history.

// ReportRow is one measured case.
type ReportRow struct {
	Experiment  string  `json:"experiment"`
	Case        string  `json:"case"`
	NsPerOp     float64 `json:"ns_per_op"`
	P50Ns       int64   `json:"p50_ns"`
	P95Ns       int64   `json:"p95_ns"`
	P99Ns       int64   `json:"p99_ns"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// ReportConfig records the knobs the measurement ran under.
type ReportConfig struct {
	LatencyNs int64 `json:"latency_ns"`
	Ops       int   `json:"ops"`
	Seed      int64 `json:"seed"`
}

// Report is the full proxybench -json document.
type Report struct {
	Date     string       `json:"date"`
	Config   ReportConfig `json:"config"`
	Rows     []ReportRow  `json:"rows"`
	Baseline []ReportRow  `json:"baseline"`
}

// BaselineRows are the pre-optimization numbers (recorded with `go test
// -bench` at -benchtime=5000x on the commit before the fast-path work;
// quantiles were not captured then, so they are zero). They are embedded
// rather than looked up so every generated report carries its own
// before/after comparison.
func BaselineRows() []ReportRow {
	return []ReportRow{
		{Experiment: "E1", Case: "direct", NsPerOp: 25.36, AllocsPerOp: 0, BytesPerOp: 0},
		{Experiment: "E1", Case: "bypass", NsPerOp: 192.8, AllocsPerOp: 2, BytesPerOp: 56},
		{Experiment: "E1", Case: "cross-context", NsPerOp: 9922, AllocsPerOp: 30, BytesPerOp: 1132},
		{Experiment: "E1", Case: "remote", NsPerOp: 10449, AllocsPerOp: 30, BytesPerOp: 1132},
		{Experiment: "E2", Case: "cached-read", NsPerOp: 516.5, AllocsPerOp: 7, BytesPerOp: 144},
		{Experiment: "E2", Case: "coherent-write", NsPerOp: 16525, AllocsPerOp: 48},
	}
}

// measure times ops executions of fn and derives allocation figures from
// the runtime's allocator statistics. It is the whole-process view —
// background goroutines (the netsim scheduler, kernel pumps) count too —
// which is exactly what we want: a "zero-allocation fast path" that
// merely moved its garbage to another goroutine would not show as zero.
func measure(experiment, name string, ops int, fn func() error) (ReportRow, error) {
	row := ReportRow{Experiment: experiment, Case: name}
	var t Timer
	t.samples = make([]time.Duration, 0, ops)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < ops; i++ {
		opStart := time.Now()
		if err := fn(); err != nil {
			return row, fmt.Errorf("%s/%s op %d: %w", experiment, name, i, err)
		}
		t.Record(time.Since(opStart))
	}
	total := time.Since(start)
	runtime.ReadMemStats(&after)
	s := t.Summary()
	row.NsPerOp = float64(total.Nanoseconds()) / float64(ops)
	row.P50Ns = s.P50.Nanoseconds()
	row.P95Ns = s.P95.Nanoseconds()
	row.P99Ns = s.P99.Nanoseconds()
	row.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(ops)
	row.BytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(ops)
	return row, nil
}

// BuildReport measures the fast-path cases and assembles the report.
// date is stamped by the caller (reports are deterministic apart from
// timing, and the bench layer does not read clocks for anything but
// latency).
func BuildReport(date string, latency time.Duration, ops int, seed int64) (*Report, error) {
	rep := &Report{
		Date:     date,
		Config:   ReportConfig{LatencyNs: latency.Nanoseconds(), Ops: ops, Seed: seed},
		Baseline: BaselineRows(),
	}
	ladder, err := measureLadder(latency, ops, seed)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, ladder...)
	cacheRows, err := measureCache(latency, ops, seed)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, cacheRows...)
	return rep, nil
}

func netOpts(latency time.Duration, seed int64) []netsim.NetworkOption {
	return []netsim.NetworkOption{
		netsim.WithDefaultLink(netsim.LinkConfig{Latency: latency}),
		netsim.WithSeed(seed),
	}
}

// measureLadder reproduces E1's four placements.
func measureLadder(latency time.Duration, ops int, seed int64) ([]ReportRow, error) {
	c, err := NewCluster(2, netOpts(latency, seed)...)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	ctx := context.Background()

	kv := NewKV()
	ref, err := c.RT(0).Export(kv, "KV")
	if err != nil {
		return nil, err
	}
	bypass, err := c.RT(0).Import(ref)
	if err != nil {
		return nil, err
	}
	rtCross, err := c.NewContextRuntime(0)
	if err != nil {
		return nil, err
	}
	cross, err := rtCross.Import(ref)
	if err != nil {
		return nil, err
	}
	remote, err := c.RT(1).Import(ref)
	if err != nil {
		return nil, err
	}

	var rows []ReportRow
	for _, m := range []struct {
		name string
		fn   func() error
	}{
		{"direct", func() error { _, err := kv.Invoke(ctx, "noop", nil); return err }},
		{"bypass", func() error { _, err := bypass.Invoke(ctx, "noop"); return err }},
		{"cross-context", func() error { _, err := cross.Invoke(ctx, "noop"); return err }},
		{"remote", func() error { _, err := remote.Invoke(ctx, "noop"); return err }},
	} {
		row, err := measure("E1", m.name, ops, m.fn)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// measureCache reproduces E2's cache-hit read and write-through cells.
func measureCache(latency time.Duration, ops int, seed int64) ([]ReportRow, error) {
	c, err := NewCluster(2, netOpts(latency, seed)...)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	ctx := context.Background()

	factory := cache.NewFactory(KVReads())
	c.RT(0).RegisterProxyType("KV", factory)
	c.RT(1).RegisterProxyType("KV", factory)
	ref, err := c.RT(0).Export(NewKV(), "KV")
	if err != nil {
		return nil, err
	}
	p, err := c.RT(1).Import(ref)
	if err != nil {
		return nil, err
	}
	// Warm: one write settles the version, one read fills the cache.
	if _, err := p.Invoke(ctx, "put", "k", int64(1)); err != nil {
		return nil, err
	}
	if _, err := p.Invoke(ctx, "get", "k"); err != nil {
		return nil, err
	}

	read, err := measure("E2", "cached-read", ops, func() error {
		_, err := p.Invoke(ctx, "get", "k")
		return err
	})
	if err != nil {
		return nil, err
	}
	write, err := measure("E2", "coherent-write", ops, func() error {
		_, err := p.Invoke(ctx, "put", "k", int64(2))
		return err
	})
	if err != nil {
		return nil, err
	}
	// Writes flush the cache; the next report run re-warms, but within
	// this run the read row was measured against a warm cache.
	return []ReportRow{read, write}, nil
}
