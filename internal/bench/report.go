package bench

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/health"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/overload"
	"repro/internal/rpc"
	"repro/internal/wire"
)

// The machine-readable benchmark report behind `proxybench -json`: a
// point-in-time measurement of the invocation fast path (the E1 ladder
// and the E2 cache hit/write cells), with latency quantiles and
// allocation counts per row, next to the frozen pre-optimization baseline
// so a regression — or the size of an improvement — is visible in one
// file without digging through git history.

// ReportRow is one measured case.
type ReportRow struct {
	Experiment  string  `json:"experiment"`
	Case        string  `json:"case"`
	NsPerOp     float64 `json:"ns_per_op"`
	P50Ns       int64   `json:"p50_ns"`
	P95Ns       int64   `json:"p95_ns"`
	P99Ns       int64   `json:"p99_ns"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// ReportConfig records the knobs the measurement ran under.
type ReportConfig struct {
	LatencyNs int64 `json:"latency_ns"`
	Ops       int   `json:"ops"`
	Seed      int64 `json:"seed"`
}

// Report is the full proxybench -json document.
type Report struct {
	Date     string       `json:"date"`
	Config   ReportConfig `json:"config"`
	Rows     []ReportRow  `json:"rows"`
	Baseline []ReportRow  `json:"baseline"`
}

// BaselineRows are the pre-optimization numbers (recorded with `go test
// -bench` at -benchtime=5000x on the commit before the fast-path work;
// quantiles were not captured then, so they are zero). They are embedded
// rather than looked up so every generated report carries its own
// before/after comparison.
func BaselineRows() []ReportRow {
	return []ReportRow{
		{Experiment: "E1", Case: "direct", NsPerOp: 25.36, AllocsPerOp: 0, BytesPerOp: 0},
		{Experiment: "E1", Case: "bypass", NsPerOp: 192.8, AllocsPerOp: 2, BytesPerOp: 56},
		{Experiment: "E1", Case: "cross-context", NsPerOp: 9922, AllocsPerOp: 30, BytesPerOp: 1132},
		{Experiment: "E1", Case: "remote", NsPerOp: 10449, AllocsPerOp: 30, BytesPerOp: 1132},
		{Experiment: "E2", Case: "cached-read", NsPerOp: 516.5, AllocsPerOp: 7, BytesPerOp: 144},
		{Experiment: "E2", Case: "coherent-write", NsPerOp: 16525, AllocsPerOp: 48},
	}
}

// measure times ops executions of fn and derives allocation figures from
// the runtime's allocator statistics. It is the whole-process view —
// background goroutines (the netsim scheduler, kernel pumps) count too —
// which is exactly what we want: a "zero-allocation fast path" that
// merely moved its garbage to another goroutine would not show as zero.
func measure(experiment, name string, ops int, fn func() error) (ReportRow, error) {
	row := ReportRow{Experiment: experiment, Case: name}
	var t Timer
	t.samples = make([]time.Duration, 0, ops)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < ops; i++ {
		opStart := time.Now()
		if err := fn(); err != nil {
			return row, fmt.Errorf("%s/%s op %d: %w", experiment, name, i, err)
		}
		t.Record(time.Since(opStart))
	}
	total := time.Since(start)
	runtime.ReadMemStats(&after)
	s := t.Summary()
	row.NsPerOp = float64(total.Nanoseconds()) / float64(ops)
	row.P50Ns = s.P50.Nanoseconds()
	row.P95Ns = s.P95.Nanoseconds()
	row.P99Ns = s.P99.Nanoseconds()
	row.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(ops)
	row.BytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(ops)
	return row, nil
}

// BuildReport measures the fast-path cases and assembles the report.
// date is stamped by the caller (reports are deterministic apart from
// timing, and the bench layer does not read clocks for anything but
// latency).
func BuildReport(date string, latency time.Duration, ops int, seed int64) (*Report, error) {
	rep := &Report{
		Date:     date,
		Config:   ReportConfig{LatencyNs: latency.Nanoseconds(), Ops: ops, Seed: seed},
		Baseline: BaselineRows(),
	}
	ladder, err := measureLadder(latency, ops, seed)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, ladder...)
	cacheRows, err := measureCache(latency, ops, seed)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, cacheRows...)
	overloadRows, err := measureOverload(latency, ops, seed)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, overloadRows...)
	goodput, err := measureGoodput(latency, seed)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, goodput)
	hedgeRows, err := measureHedge(latency, ops, seed)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, hedgeRows...)
	grayRows, err := measureGray(latency, ops, seed)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, grayRows...)
	trainRows, err := measureTrains(latency, ops, seed)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, trainRows...)
	return rep, nil
}

// measureTrains is E17's fan-in pair: eight concurrent callers on one
// same-node cross-context KV, once over plain endpoints and once over
// coalescing ones, plus the train path's lone-caller cell (the bounded
// tax a single client pays for the staging machinery). Fan-in rows are
// throughput measurements — ns/op is wall clock over total ops and the
// quantiles pool every caller's per-op latencies — because trains only
// exist where calls overlap.
func measureTrains(latency time.Duration, ops int, seed int64) ([]ReportRow, error) {
	const fanin = 8
	run := func(name string, coalesce bool, callers int) (ReportRow, error) {
		row := ReportRow{Experiment: "E17", Case: name}
		build := NewCluster
		if coalesce {
			build = NewCoalescedCluster
		}
		c, err := build(1, netOpts(latency, seed)...)
		if err != nil {
			return row, err
		}
		defer c.Close()
		ctx := context.Background()
		ref, err := c.RT(0).Export(NewKV(), "KV")
		if err != nil {
			return row, err
		}
		client, err := c.NewContextRuntime(0)
		if err != nil {
			return row, err
		}
		proxies := make([]core.Proxy, callers)
		for i := range proxies {
			if proxies[i], err = client.Import(ref); err != nil {
				return row, err
			}
		}
		// Constant total work at any fan-in, scaled up 4× from the serial
		// rows: concurrent cells need a longer window before scheduler
		// noise stops dominating the wall clock.
		perCaller := ops * 4 * fanin / callers
		work := func(p core.Proxy, samples *[]time.Duration) error {
			for i := 0; i < perCaller; i++ {
				opStart := time.Now()
				if _, err := p.Invoke(ctx, "noop"); err != nil {
					return err
				}
				*samples = append(*samples, time.Since(opStart))
			}
			return nil
		}
		// Warm in the measured shape so the coalescer's load detector has
		// latched (or declined to) before the clock starts.
		var warm sync.WaitGroup
		warmErr := make(chan error, callers)
		for _, p := range proxies {
			warm.Add(1)
			go func(p core.Proxy) {
				defer warm.Done()
				for i := 0; i < 50; i++ {
					if _, err := p.Invoke(ctx, "noop"); err != nil {
						warmErr <- err
						return
					}
				}
			}(p)
		}
		warm.Wait()
		close(warmErr)
		for err := range warmErr {
			return row, err
		}

		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		sampleSets := make([][]time.Duration, callers)
		errs := make(chan error, callers)
		var wg sync.WaitGroup
		start := time.Now()
		for i, p := range proxies {
			wg.Add(1)
			go func(i int, p core.Proxy) {
				defer wg.Done()
				sampleSets[i] = make([]time.Duration, 0, perCaller)
				if err := work(p, &sampleSets[i]); err != nil {
					errs <- err
				}
			}(i, p)
		}
		wg.Wait()
		total := time.Since(start)
		runtime.ReadMemStats(&after)
		close(errs)
		for err := range errs {
			return row, err
		}

		var t Timer
		for _, s := range sampleSets {
			t.samples = append(t.samples, s...)
		}
		s := t.Summary()
		n := callers * perCaller
		row.NsPerOp = float64(total.Nanoseconds()) / float64(n)
		row.P50Ns = s.P50.Nanoseconds()
		row.P95Ns = s.P95.Nanoseconds()
		row.P99Ns = s.P99.Nanoseconds()
		row.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(n)
		row.BytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(n)
		return row, nil
	}

	var rows []ReportRow
	for _, m := range []struct {
		name     string
		coalesce bool
		callers  int
	}{
		{"plain-fanin8", false, fanin},
		{"train-fanin8", true, fanin},
		{"train-fanin1", true, 1},
	} {
		row, err := run(m.name, m.coalesce, m.callers)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func netOpts(latency time.Duration, seed int64) []netsim.NetworkOption {
	return []netsim.NetworkOption{
		netsim.WithDefaultLink(netsim.LinkConfig{Latency: latency}),
		netsim.WithSeed(seed),
	}
}

// measureLadder reproduces E1's four placements.
func measureLadder(latency time.Duration, ops int, seed int64) ([]ReportRow, error) {
	c, err := NewCluster(2, netOpts(latency, seed)...)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	ctx := context.Background()

	kv := NewKV()
	ref, err := c.RT(0).Export(kv, "KV")
	if err != nil {
		return nil, err
	}
	bypass, err := c.RT(0).Import(ref)
	if err != nil {
		return nil, err
	}
	rtCross, err := c.NewContextRuntime(0)
	if err != nil {
		return nil, err
	}
	cross, err := rtCross.Import(ref)
	if err != nil {
		return nil, err
	}
	remote, err := c.RT(1).Import(ref)
	if err != nil {
		return nil, err
	}

	var rows []ReportRow
	for _, m := range []struct {
		name string
		fn   func() error
	}{
		{"direct", func() error { _, err := kv.Invoke(ctx, "noop", nil); return err }},
		{"bypass", func() error { _, err := bypass.Invoke(ctx, "noop"); return err }},
		{"cross-context", func() error { _, err := cross.Invoke(ctx, "noop"); return err }},
		{"remote", func() error { _, err := remote.Invoke(ctx, "noop"); return err }},
	} {
		row, err := measure("E1", m.name, ops, m.fn)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// measureCache reproduces E2's cache-hit read and write-through cells.
func measureCache(latency time.Duration, ops int, seed int64) ([]ReportRow, error) {
	c, err := NewCluster(2, netOpts(latency, seed)...)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	ctx := context.Background()

	factory := cache.NewFactory(KVReads())
	c.RT(0).RegisterProxyType("KV", factory)
	c.RT(1).RegisterProxyType("KV", factory)
	ref, err := c.RT(0).Export(NewKV(), "KV")
	if err != nil {
		return nil, err
	}
	p, err := c.RT(1).Import(ref)
	if err != nil {
		return nil, err
	}
	// Warm: one write settles the version, one read fills the cache.
	if _, err := p.Invoke(ctx, "put", "k", int64(1)); err != nil {
		return nil, err
	}
	if _, err := p.Invoke(ctx, "get", "k"); err != nil {
		return nil, err
	}

	read, err := measure("E2", "cached-read", ops, func() error {
		_, err := p.Invoke(ctx, "get", "k")
		return err
	})
	if err != nil {
		return nil, err
	}
	write, err := measure("E2", "coherent-write", ops, func() error {
		_, err := p.Invoke(ctx, "put", "k", int64(2))
		return err
	})
	if err != nil {
		return nil, err
	}
	// Writes flush the cache; the next report run re-warms, but within
	// this run the read row was measured against a warm cache.
	return []ReportRow{read, write}, nil
}

// measureOverload is the E15 scenario: the cost of a remote invocation
// through the admission controller with capacity to spare, next to the
// cost of a shed — the round trip that comes back as pushback when the
// node is saturated. The shed row is the price a client pays to LEARN the
// node is overloaded; it must stay in the same ballpark as an admitted
// call (one round trip, no queueing, no retransmit), or backpressure
// itself becomes the overload.
func measureOverload(latency time.Duration, ops int, seed int64) ([]ReportRow, error) {
	net := netsim.New(netOpts(latency, seed)...)
	defer net.Close()
	reg := obs.NewRegistry()
	// Limit 1, queue 1: one parked call holds the slot, a second parks in
	// the queue (the far-off deadline keeps it there), and from then on
	// every normal-priority arrival sheds immediately.
	adm := overload.NewController(overload.Config{
		MinLimit: 1, MaxLimit: 1, InitialLimit: 1,
		QueueLimit: 1, QueueDeadline: time.Hour,
	}, reg, "bench.")
	mk := func(id wire.NodeID, opts ...kernel.NodeOption) (*core.Runtime, *kernel.Node, error) {
		ep, err := net.Attach(id)
		if err != nil {
			return nil, nil, err
		}
		node := kernel.NewNode(ep, opts...)
		ktx, err := node.NewContext()
		if err != nil {
			node.Close()
			return nil, nil, err
		}
		return core.NewRuntime(ktx), node, nil
	}
	server, srvNode, err := mk(1, kernel.WithAdmission(adm))
	if err != nil {
		return nil, err
	}
	defer srvNode.Close()
	client, cliNode, err := mk(2)
	if err != nil {
		return nil, err
	}
	defer cliNode.Close()

	park := &parkSvc{release: make(chan struct{}), started: make(chan struct{}, 2)}
	ref, err := server.Export(park, "KV")
	if err != nil {
		return nil, err
	}
	p, err := client.Import(ref)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()

	// Admitted: the slot is free, every call goes straight through.
	admitted, err := measure("E15", "admitted", ops, func() error {
		_, err := p.Invoke(ctx, "noop")
		return err
	})
	if err != nil {
		return nil, err
	}

	// Saturate: one call holds the slot (its handler starts), a second
	// parks in the admission queue (its handler never runs — observe it
	// through the controller's queue depth instead).
	errs := make(chan error, 2)
	go func() {
		_, err := p.Invoke(ctx, "park")
		errs <- err
	}()
	<-park.started
	go func() {
		_, err := p.Invoke(ctx, "park")
		errs <- err
	}()
	for deadline := time.Now().Add(5 * time.Second); adm.Status().Queued == 0; {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("E15 fixture: queue never filled")
		}
		time.Sleep(time.Millisecond)
	}
	shed, err := measure("E15", "shed-pushback", ops, func() error {
		if _, err := p.Invoke(ctx, "noop"); !core.IsOverload(err) {
			return fmt.Errorf("expected pushback, got %v", err)
		}
		return nil
	})
	close(park.release)
	for i := 0; i < 2; i++ {
		// The queued call's own retransmissions can meet the full queue
		// and come back as pushback — that IS the mechanism under test,
		// so it is a legitimate way for a parked call to end.
		if perr := <-errs; perr != nil && !core.IsOverload(perr) && err == nil {
			err = perr
		}
	}
	if err != nil {
		return nil, err
	}
	return []ReportRow{admitted, shed}, nil
}

// measureGoodput is E15's headline number in per-op form: useful work
// per second at 2x offered load against a pinned admission limit,
// reported as ns per SUCCESSFUL op so the report's deltas track goodput
// PR over PR (smaller = more goodput). Quantiles are zero — the row
// measures throughput, not a latency distribution.
func measureGoodput(latency time.Duration, seed int64) (ReportRow, error) {
	row := ReportRow{Experiment: "E15", Case: "goodput-2x"}
	net := netsim.New(netOpts(latency, seed)...)
	defer net.Close()
	const limit = 4
	const serviceTime = 2 * time.Millisecond
	adm := overload.NewController(overload.Config{
		MinLimit: limit, MaxLimit: limit, InitialLimit: limit,
		QueueLimit: 2 * limit, QueueDeadline: 2 * serviceTime,
	}, obs.NewRegistry(), "bench.")
	world, err := newOverloadPair(net, adm, &busyService{d: serviceTime})
	if err != nil {
		return row, err
	}
	defer world.close()

	var ok atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2*limit; i++ { // 2x the slots the server has
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := world.p.Invoke(context.Background(), "work"); err == nil {
					ok.Add(1)
				} else {
					time.Sleep(serviceTime / 2) // honor the pushback
				}
			}
		}()
	}
	start := time.Now()
	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	if ok.Load() == 0 {
		return row, fmt.Errorf("E15 goodput: no successful ops at 2x load")
	}
	row.NsPerOp = float64(elapsed.Nanoseconds()) / float64(ok.Load())
	return row, nil
}

// measureHedge is E15's tail-latency pair: the same sporadically-slow
// read workload through a plain client and a hedging one, so the
// report's p99 column carries the hedge win PR over PR.
func measureHedge(latency time.Duration, ops int, seed int64) ([]ReportRow, error) {
	net := netsim.New(netOpts(latency, seed)...)
	defer net.Close()
	const slowFor = 20 * time.Millisecond
	var nodes []*kernel.Node
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()
	mk := func(id wire.NodeID, opts ...core.RuntimeOption) (*core.Runtime, error) {
		ep, err := net.Attach(id)
		if err != nil {
			return nil, err
		}
		node := kernel.NewNode(ep)
		nodes = append(nodes, node)
		ktx, err := node.NewContext()
		if err != nil {
			return nil, err
		}
		opts = append([]core.RuntimeOption{core.WithClient(rpc.NewClient(ktx,
			rpc.WithRetryInterval(100*time.Millisecond), rpc.WithMaxAttempts(5)))}, opts...)
		return core.NewRuntime(ktx, opts...), nil
	}
	primary, err := mk(1)
	if err != nil {
		return nil, err
	}
	alternate, err := mk(2)
	if err != nil {
		return nil, err
	}
	plainRT, err := mk(3)
	if err != nil {
		return nil, err
	}
	hedgedRT, err := mk(4, core.WithHedging(core.HedgeConfig{
		MinDelay: 2 * time.Millisecond, MaxDelay: 5 * time.Millisecond}))
	if err != nil {
		return nil, err
	}
	ref1, err := primary.Export(&tailService{slowFor: slowFor}, "KV")
	if err != nil {
		return nil, err
	}
	ref2, err := alternate.Export(&tailService{}, "KV")
	if err != nil {
		return nil, err
	}

	ctx := context.Background()
	run := func(name string, rt *core.Runtime, hedge bool) (ReportRow, error) {
		p, err := rt.Import(ref1)
		if err != nil {
			return ReportRow{}, err
		}
		if hedge {
			rt.RegisterIdempotent("KV", "get")
			p.(*core.Stub).SetAlternates([]codec.Ref{ref1, ref2})
		}
		return measure("E15", name, ops, func() error {
			_, err := p.Invoke(ctx, "get")
			return err
		})
	}
	plain, err := run("plain-read", plainRT, false)
	if err != nil {
		return nil, err
	}
	hedged, err := run("hedged-read", hedgedRT, true)
	if err != nil {
		return nil, err
	}
	return []ReportRow{plain, hedged}, nil
}

// measureGray is E16's before/after tail pair: the same write workload
// against a node that turns 10× slow mid-run, through a health-scored
// client (the outlier verdict steers every call to a healthy alternate
// before send) and through the unscored control. The report carries all
// four cells so the ejection win — scored degraded p99 holding at the
// healthy baseline while the unscored one inherits the slow node's
// latency — is visible PR over PR.
func measureGray(latency time.Duration, ops int, seed int64) ([]ReportRow, error) {
	if ops > 120 {
		// The unscored degraded phase pays ~2x the injected latency per
		// op; cap so the control finishes in bounded time at any -ops.
		ops = 120
	}
	const monInterval = 40 * time.Millisecond // probe timeout 20ms > degraded RTT
	extra := 10 * latency
	if extra == 0 {
		// -json measures at zero link latency by default; the gray cells
		// need a real degradation to bite, so inject a fixed one.
		extra = 5 * time.Millisecond
	}

	run := func(prefix string, withHealth bool) ([]ReportRow, error) {
		net := netsim.New(netOpts(latency, seed)...)
		defer net.Close()
		var nodes []*kernel.Node
		var mons []*health.Monitor
		defer func() {
			for _, m := range mons {
				m.Close()
			}
			for _, n := range nodes {
				_ = n.Close()
			}
		}()
		mk := func(id wire.NodeID) (*core.Runtime, error) {
			ep, err := net.Attach(id)
			if err != nil {
				return nil, err
			}
			node := kernel.NewNode(ep)
			nodes = append(nodes, node)
			ktx, err := node.NewContext()
			if err != nil {
				return nil, err
			}
			opts := []core.RuntimeOption{core.WithClient(rpc.NewClient(ktx,
				rpc.WithRetryInterval(50*time.Millisecond), rpc.WithMaxAttempts(4)))}
			if withHealth {
				mon := health.NewMonitor(ktx,
					health.WithInterval(monInterval),
					health.WithOutlierFactor(1.5),
					health.WithEWMAAlpha(0.4))
				mons = append(mons, mon)
				opts = append(opts, core.WithHealth(mon))
			}
			return core.NewRuntime(ktx, opts...), nil
		}
		const n = 4 // slow KV, alternate KV, client, relay peer
		rts := make([]*core.Runtime, 0, n)
		for id := 1; id <= n; id++ {
			rt, err := mk(wire.NodeID(id))
			if err != nil {
				return nil, err
			}
			rts = append(rts, rt)
		}
		for i, mon := range mons {
			for j := 1; j <= n; j++ {
				if j != i+1 {
					mon.Watch(wire.NodeID(j))
				}
			}
		}
		ref1, err := rts[0].Export(NewKV(), "KV")
		if err != nil {
			return nil, err
		}
		ref2, err := rts[1].Export(NewKV(), "KV")
		if err != nil {
			return nil, err
		}
		p, err := rts[2].Import(ref1)
		if err != nil {
			return nil, err
		}
		p.(*core.Stub).SetAlternates([]codec.Ref{ref1, ref2})

		ctx := context.Background()
		var i int
		work := func() error {
			i++
			_, err := p.Invoke(ctx, "put", fmt.Sprintf("k%d", i%8), int64(i))
			return err
		}
		healthy, err := measure("E16", prefix+"-healthy", ops, work)
		if err != nil {
			return nil, err
		}
		net.DegradeNode(1, netsim.LinkCond{ExtraLatency: extra})
		if withHealth {
			mon := mons[2]
			for deadline := time.Now().Add(5 * time.Second); mon.Score(1) < 0.75; {
				if time.Now().After(deadline) {
					return nil, fmt.Errorf("E16 fixture: monitor never scored the slow node: %+v", mon.Status(1))
				}
				time.Sleep(10 * time.Millisecond)
			}
		}
		degraded, err := measure("E16", prefix+"-degraded", ops, work)
		if err != nil {
			return nil, err
		}
		return []ReportRow{healthy, degraded}, nil
	}

	scored, err := run("gray-scored", true)
	if err != nil {
		return nil, err
	}
	unscored, err := run("gray-unscored", false)
	if err != nil {
		return nil, err
	}
	return append(scored, unscored...), nil
}

// overloadPair is a two-node world whose server sits behind an admission
// controller.
type overloadPair struct {
	p       core.Proxy
	srvNode *kernel.Node
	cliNode *kernel.Node
}

func newOverloadPair(net *netsim.Network, adm *overload.Controller, svc core.Service) (*overloadPair, error) {
	w := &overloadPair{}
	mk := func(id wire.NodeID, opts ...kernel.NodeOption) (*core.Runtime, *kernel.Node, error) {
		ep, err := net.Attach(id)
		if err != nil {
			return nil, nil, err
		}
		node := kernel.NewNode(ep, opts...)
		ktx, err := node.NewContext()
		if err != nil {
			node.Close()
			return nil, nil, err
		}
		return core.NewRuntime(ktx, core.WithClient(rpc.NewClient(ktx,
			rpc.WithRetryInterval(100*time.Millisecond)))), node, nil
	}
	server, srvNode, err := mk(1, kernel.WithAdmission(adm))
	if err != nil {
		return nil, err
	}
	w.srvNode = srvNode
	client, cliNode, err := mk(2)
	if err != nil {
		w.close()
		return nil, err
	}
	w.cliNode = cliNode
	ref, err := server.Export(svc, "KV")
	if err != nil {
		w.close()
		return nil, err
	}
	if w.p, err = client.Import(ref); err != nil {
		w.close()
		return nil, err
	}
	return w, nil
}

func (w *overloadPair) close() {
	if w.srvNode != nil {
		_ = w.srvNode.Close()
	}
	if w.cliNode != nil {
		_ = w.cliNode.Close()
	}
}

// busyService burns a fixed service time per call.
type busyService struct{ d time.Duration }

func (s *busyService) Invoke(ctx context.Context, method string, args []any) ([]any, error) {
	select {
	case <-time.After(s.d):
		return []any{true}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// tailService answers instantly except every 10th call, which stalls.
type tailService struct {
	n       atomic.Uint64
	slowFor time.Duration
}

func (s *tailService) Invoke(ctx context.Context, method string, args []any) ([]any, error) {
	if s.slowFor > 0 && s.n.Add(1)%10 == 0 {
		select {
		case <-time.After(s.slowFor):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return []any{int64(1)}, nil
}

// parkSvc answers noop instantly and parks park() until released.
type parkSvc struct {
	release chan struct{}
	started chan struct{}
}

func (s *parkSvc) Invoke(ctx context.Context, method string, args []any) ([]any, error) {
	if method == "park" {
		s.started <- struct{}{}
		select {
		case <-s.release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return []any{true}, nil
}
