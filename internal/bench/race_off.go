//go:build !race

package bench

// RaceEnabled reports whether the race detector is compiled in. The
// alloc-budget tests skip under -race: the detector instruments every
// allocation site and the budgets would measure it, not the code.
const RaceEnabled = false
