package bench

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Mixed is a seeded read/write workload over a KV proxy: each operation is
// a get with probability ReadFraction, else a put, on a uniformly chosen
// key. The same seed produces the same operation sequence, so competing
// designs (stub vs caching vs replica vs DSM) run literally identical
// workloads.
type Mixed struct {
	ReadFraction float64
	Ops          int
	Keys         int
	Seed         int64
	// Hist, when set, receives one per-operation latency sample, so a
	// workload run yields a p50/p95/p99 distribution in the obs registry
	// (not just total wall time).
	Hist *obs.Histogram
}

// Run drives the workload through a proxy and returns the total wall time.
func (w Mixed) Run(ctx context.Context, p core.Proxy) (time.Duration, error) {
	rng := rand.New(rand.NewSource(w.Seed))
	start := time.Now()
	for i := 0; i < w.Ops; i++ {
		key := fmt.Sprintf("k%d", rng.Intn(max(w.Keys, 1)))
		opStart := time.Now()
		if rng.Float64() < w.ReadFraction {
			if _, err := p.Invoke(ctx, "get", key); err != nil {
				return 0, fmt.Errorf("op %d get %s: %w", i, key, err)
			}
		} else {
			if _, err := p.Invoke(ctx, "put", key, int64(i)); err != nil {
				return 0, fmt.Errorf("op %d put %s: %w", i, key, err)
			}
		}
		if w.Hist != nil {
			w.Hist.Observe(time.Since(opStart))
		}
	}
	return time.Since(start), nil
}

// RunFunc drives the same operation sequence through arbitrary read/write
// functions — the shim that lets the DSM comparator run the identical
// workload without a proxy.
func (w Mixed) RunFunc(ctx context.Context, read func(ctx context.Context, key string) error, write func(ctx context.Context, key string, v int64) error) (time.Duration, error) {
	rng := rand.New(rand.NewSource(w.Seed))
	start := time.Now()
	for i := 0; i < w.Ops; i++ {
		key := fmt.Sprintf("k%d", rng.Intn(max(w.Keys, 1)))
		opStart := time.Now()
		if rng.Float64() < w.ReadFraction {
			if err := read(ctx, key); err != nil {
				return 0, fmt.Errorf("op %d read %s: %w", i, key, err)
			}
		} else {
			if err := write(ctx, key, int64(i)); err != nil {
				return 0, fmt.Errorf("op %d write %s: %w", i, key, err)
			}
		}
		if w.Hist != nil {
			w.Hist.Observe(time.Since(opStart))
		}
	}
	return time.Since(start), nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
