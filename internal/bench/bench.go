// Package bench provides the shared fixtures for the experiment suite
// (EXPERIMENTS.md): a multi-runtime cluster over the simulated network, a
// KV service that satisfies every smart-proxy contract (plain service,
// cacheable, replicable state machine, migratable object), seeded workload
// generators, and latency/table helpers used by both the root benchmarks
// and cmd/proxybench.
package bench

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/wire"
)

// Cluster is n runtimes, one per simulated node, plus the network that
// joins them. All runtimes share one Observer, so counters from every
// context land in one registry and a cross-context invocation's spans
// reconstruct as one tree out of Obs.Tracer.
type Cluster struct {
	Net      *netsim.Network
	Obs      *obs.Observer
	Runtimes []*core.Runtime
	// Coalesced holds each node's train-coalescing endpoint wrapper when
	// the cluster was built with NewCoalescedCluster (nil otherwise);
	// index i belongs to node i+1.
	Coalesced []*netsim.CoalescedEndpoint
	nodes     []*kernel.Node
}

// NewCluster builds a cluster of n runtimes.
func NewCluster(n int, opts ...netsim.NetworkOption) (*Cluster, error) {
	return newCluster(n, false, opts...)
}

// NewCoalescedCluster builds a cluster whose node endpoints coalesce
// same-destination frames into trains (netsim.Coalesce) — the fixture for
// measuring the train path against the plain NewCluster baseline.
func NewCoalescedCluster(n int, opts ...netsim.NetworkOption) (*Cluster, error) {
	return newCluster(n, true, opts...)
}

func newCluster(n int, coalesce bool, opts ...netsim.NetworkOption) (*Cluster, error) {
	c := &Cluster{Net: netsim.New(opts...), Obs: obs.NewObserver()}
	for i := 0; i < n; i++ {
		ep, err := c.Net.Attach(wire.NodeID(i + 1))
		if err != nil {
			c.Close()
			return nil, err
		}
		if coalesce {
			ce := netsim.Coalesce(ep, wire.CoalescerConfig{})
			c.Coalesced = append(c.Coalesced, ce)
			ep = ce
		}
		node := kernel.NewNode(ep)
		c.nodes = append(c.nodes, node)
		ktx, err := node.NewContext()
		if err != nil {
			c.Close()
			return nil, err
		}
		c.Runtimes = append(c.Runtimes, core.NewRuntime(ktx, core.WithObserver(c.Obs)))
	}
	return c, nil
}

// RT returns the i-th runtime.
func (c *Cluster) RT(i int) *core.Runtime { return c.Runtimes[i] }

// NewContextRuntime adds another context (and runtime) on node i — for
// experiments that need same-node, cross-context placement (E1).
func (c *Cluster) NewContextRuntime(i int) (*core.Runtime, error) {
	ktx, err := c.nodes[i].NewContext()
	if err != nil {
		return nil, err
	}
	return core.NewRuntime(ktx, core.WithObserver(c.Obs)), nil
}

// Close shuts everything down.
func (c *Cluster) Close() {
	for _, n := range c.nodes {
		_ = n.Close()
	}
	if c.Net != nil {
		c.Net.Close()
	}
}

// KV is the workhorse service: a keyed int64 store. Method surface:
//
//	get(k string) -> int64          (read)
//	sum() -> int64                  (read)
//	put(k string, v int64) -> int64 (write)
//	incr(k string) -> int64         (write)
//	noop() -> ()                    (read; for null-invocation latency)
//
// It implements core.Service, via Snapshot/Restore also
// replica.StateMachine and migrate.Migratable, and via
// Keys/ExportKeys/ImportKeys/DropKeys also shard.Store.
type KV struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewKV builds an empty store.
func NewKV() *KV { return &KV{m: make(map[string]int64)} }

// KVReads lists the KV's cacheable/replicable read methods.
func KVReads() []string { return []string{"get", "sum", "noop"} }

// KVShardSpec declares the KV keyspace for sharding: get/put/incr route
// by their key argument, mget/mput fan out one sub-invocation per key.
func KVShardSpec() shard.Spec {
	return shard.Spec{
		SingleKey: []string{"get", "put", "incr"},
		MultiKey:  map[string]string{"mget": "get", "mput": "put"},
	}
}

// Invoke implements core.Service.
func (s *KV) Invoke(ctx context.Context, method string, args []any) ([]any, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch method {
	case "noop":
		return nil, nil
	case "get":
		if len(args) < 1 {
			return nil, core.BadArgs(method, "want (key)")
		}
		k, _ := args[0].(string)
		return []any{s.m[k]}, nil
	case "sum":
		var t int64
		for _, v := range s.m {
			t += v
		}
		return []any{t}, nil
	case "put":
		if len(args) < 2 {
			return nil, core.BadArgs(method, "want (key, value)")
		}
		k, _ := args[0].(string)
		v, _ := args[1].(int64)
		s.m[k] = v
		return []any{v}, nil
	case "incr":
		if len(args) < 1 {
			return nil, core.BadArgs(method, "want (key)")
		}
		k, _ := args[0].(string)
		s.m[k]++
		return []any{s.m[k]}, nil
	default:
		return nil, core.NoSuchMethod(method)
	}
}

// Snapshot implements the state-capture half of StateMachine/Migratable.
func (s *KV) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return codec.Marshal(s.m)
}

// Restore implements the state-restore half of StateMachine/Migratable.
func (s *KV) Restore(data []byte) error {
	var m map[string]int64
	if err := codec.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("bench: restore KV: %w", err)
	}
	if m == nil {
		m = make(map[string]int64)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m = m
	return nil
}

// Get reads a key directly (test assertions on the authoritative copy).
func (s *KV) Get(k string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[k]
}

// Len reports how many keys the store holds.
func (s *KV) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// Keys implements the enumeration half of shard.Store.
func (s *KV) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ExportKeys implements shard.Store: per-key handoff blobs.
func (s *KV) ExportKeys(keys []string) (map[string][]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string][]byte, len(keys))
	for _, k := range keys {
		if v, ok := s.m[k]; ok {
			b, err := codec.Marshal(v)
			if err != nil {
				return nil, err
			}
			out[k] = b
		}
	}
	return out, nil
}

// ImportKeys implements shard.Store (idempotent: overwrites).
func (s *KV) ImportKeys(kvs map[string][]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, b := range kvs {
		var v int64
		if err := codec.Unmarshal(b, &v); err != nil {
			return fmt.Errorf("bench: import key %q: %w", k, err)
		}
		s.m[k] = v
	}
	return nil
}

// DropKeys implements shard.Store (idempotent).
func (s *KV) DropKeys(keys []string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, k := range keys {
		delete(s.m, k)
	}
	return nil
}
