// Package bench provides the shared fixtures for the experiment suite
// (EXPERIMENTS.md): a multi-runtime cluster over the simulated network, a
// KV service that satisfies every smart-proxy contract (plain service,
// cacheable, replicable state machine, migratable object), seeded workload
// generators, and latency/table helpers used by both the root benchmarks
// and cmd/proxybench.
package bench

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/wire"
)

// Cluster is n runtimes, one per simulated node, plus the network that
// joins them. All runtimes share one Observer, so counters from every
// context land in one registry and a cross-context invocation's spans
// reconstruct as one tree out of Obs.Tracer.
type Cluster struct {
	Net      *netsim.Network
	Obs      *obs.Observer
	Runtimes []*core.Runtime
	nodes    []*kernel.Node
}

// NewCluster builds a cluster of n runtimes.
func NewCluster(n int, opts ...netsim.NetworkOption) (*Cluster, error) {
	c := &Cluster{Net: netsim.New(opts...), Obs: obs.NewObserver()}
	for i := 0; i < n; i++ {
		ep, err := c.Net.Attach(wire.NodeID(i + 1))
		if err != nil {
			c.Close()
			return nil, err
		}
		node := kernel.NewNode(ep)
		c.nodes = append(c.nodes, node)
		ktx, err := node.NewContext()
		if err != nil {
			c.Close()
			return nil, err
		}
		c.Runtimes = append(c.Runtimes, core.NewRuntime(ktx, core.WithObserver(c.Obs)))
	}
	return c, nil
}

// RT returns the i-th runtime.
func (c *Cluster) RT(i int) *core.Runtime { return c.Runtimes[i] }

// NewContextRuntime adds another context (and runtime) on node i — for
// experiments that need same-node, cross-context placement (E1).
func (c *Cluster) NewContextRuntime(i int) (*core.Runtime, error) {
	ktx, err := c.nodes[i].NewContext()
	if err != nil {
		return nil, err
	}
	return core.NewRuntime(ktx, core.WithObserver(c.Obs)), nil
}

// Close shuts everything down.
func (c *Cluster) Close() {
	for _, n := range c.nodes {
		_ = n.Close()
	}
	if c.Net != nil {
		c.Net.Close()
	}
}

// KV is the workhorse service: a keyed int64 store. Method surface:
//
//	get(k string) -> int64          (read)
//	sum() -> int64                  (read)
//	put(k string, v int64) -> int64 (write)
//	incr(k string) -> int64         (write)
//	noop() -> ()                    (read; for null-invocation latency)
//
// It implements core.Service, and via Snapshot/Restore also
// replica.StateMachine and migrate.Migratable.
type KV struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewKV builds an empty store.
func NewKV() *KV { return &KV{m: make(map[string]int64)} }

// KVReads lists the KV's cacheable/replicable read methods.
func KVReads() []string { return []string{"get", "sum", "noop"} }

// Invoke implements core.Service.
func (s *KV) Invoke(ctx context.Context, method string, args []any) ([]any, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch method {
	case "noop":
		return nil, nil
	case "get":
		k, _ := args[0].(string)
		return []any{s.m[k]}, nil
	case "sum":
		var t int64
		for _, v := range s.m {
			t += v
		}
		return []any{t}, nil
	case "put":
		k, _ := args[0].(string)
		v, _ := args[1].(int64)
		s.m[k] = v
		return []any{v}, nil
	case "incr":
		k, _ := args[0].(string)
		s.m[k]++
		return []any{s.m[k]}, nil
	default:
		return nil, core.NoSuchMethod(method)
	}
}

// Snapshot implements the state-capture half of StateMachine/Migratable.
func (s *KV) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return codec.Marshal(s.m)
}

// Restore implements the state-restore half of StateMachine/Migratable.
func (s *KV) Restore(data []byte) error {
	var m map[string]int64
	if err := codec.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("bench: restore KV: %w", err)
	}
	if m == nil {
		m = make(map[string]int64)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m = m
	return nil
}

// Get reads a key directly (test assertions on the authoritative copy).
func (s *KV) Get(k string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[k]
}
