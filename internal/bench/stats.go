package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

// Timer accumulates latency samples. When Hist is set, every sample is
// also teed into that registry histogram, so per-invocation latency
// distributions surface through the obs export alongside the exact
// in-memory summary.
type Timer struct {
	Hist    *obs.Histogram
	samples []time.Duration
}

// Record adds one sample.
func (t *Timer) Record(d time.Duration) {
	t.samples = append(t.samples, d)
	if t.Hist != nil {
		t.Hist.Observe(d)
	}
}

// Time runs fn and records its duration.
func (t *Timer) Time(fn func()) {
	start := time.Now()
	fn()
	t.Record(time.Since(start))
}

// Summary reports sample statistics.
type Summary struct {
	Count int
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Min   time.Duration
	Max   time.Duration
}

// Summary computes the stats over all recorded samples.
func (t *Timer) Summary() Summary {
	if len(t.samples) == 0 {
		return Summary{}
	}
	s := append([]time.Duration(nil), t.samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	var total time.Duration
	for _, d := range s {
		total += d
	}
	return Summary{
		Count: len(s),
		Mean:  total / time.Duration(len(s)),
		P50:   s[len(s)/2],
		P95:   s[(len(s)*95)/100],
		P99:   s[(len(s)*99)/100],
		Min:   s[0],
		Max:   s[len(s)-1],
	}
}

// Table renders aligned columns for experiment output.
type Table struct {
	Headers []string
	Rows    [][]string
}

// Add appends a row, stringifying each cell with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case time.Duration:
			// Sub-10µs values keep nanosecond resolution (E1's lower
			// rungs); anything larger reads better rounded.
			if v < 10*time.Microsecond {
				row[i] = v.Round(10 * time.Nanosecond).String()
			} else {
				row[i] = v.Round(time.Microsecond).String()
			}
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Print writes the table with aligned columns.
func (t *Table) Print(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		return strings.TrimRight(b.String(), " ")
	}
	fmt.Fprintln(w, line(t.Headers))
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	fmt.Fprintln(w, line(sep))
	for _, row := range t.Rows {
		fmt.Fprintln(w, line(row))
	}
}
