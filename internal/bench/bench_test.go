package bench

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/migrate"
	"repro/internal/replica"
)

func TestClusterLifecycle(t *testing.T) {
	c, err := NewCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if len(c.Runtimes) != 3 {
		t.Fatalf("runtimes = %d", len(c.Runtimes))
	}
	ref, err := c.RT(0).Export(NewKV(), "KV")
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.RT(1).Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke(context.Background(), "put", "k", int64(1)); err != nil {
		t.Fatal(err)
	}
	rt2, err := c.NewContextRuntime(0)
	if err != nil {
		t.Fatal(err)
	}
	if rt2.Addr().Node != c.RT(0).Addr().Node {
		t.Error("extra context landed on a different node")
	}
}

func TestKVInterfaces(t *testing.T) {
	// KV must satisfy every smart-proxy contract.
	var _ replica.StateMachine = NewKV()
	var _ migrate.Migratable = NewKV()
}

func TestKVSnapshotRestore(t *testing.T) {
	kv := NewKV()
	ctx := context.Background()
	if _, err := kv.Invoke(ctx, "put", []any{"a", int64(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := kv.Invoke(ctx, "incr", []any{"a"}); err != nil {
		t.Fatal(err)
	}
	snap, err := kv.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	kv2 := NewKV()
	if err := kv2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if kv2.Get("a") != 2 {
		t.Errorf("restored a = %d", kv2.Get("a"))
	}
	res, err := kv2.Invoke(ctx, "sum", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != int64(2) {
		t.Errorf("sum = %v", res[0])
	}
}

func TestMixedWorkloadDeterministic(t *testing.T) {
	c, err := NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	kv := NewKV()
	ref, err := c.RT(0).Export(kv, "KV")
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.RT(1).Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	w := Mixed{ReadFraction: 0.5, Ops: 200, Keys: 10, Seed: 42}
	if _, err := w.Run(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	first, err := kv.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Re-running the same seed against a fresh store gives identical state.
	kv2 := NewKV()
	ref2, err := c.RT(0).Export(kv2, "KV")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.RT(1).Import(ref2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(context.Background(), p2); err != nil {
		t.Fatal(err)
	}
	second, err := kv2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Error("same seed produced different final states")
	}
}

func TestRunFuncMirrorsRun(t *testing.T) {
	// The func-shim path must issue the same op sequence as the proxy
	// path: drive both into plain local KVs and compare.
	kvA, kvB := NewKV(), NewKV()
	ctx := context.Background()
	w := Mixed{ReadFraction: 0.3, Ops: 150, Keys: 7, Seed: 9}

	c, err := NewCluster(1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	refA, err := c.RT(0).Export(kvA, "KV")
	if err != nil {
		t.Fatal(err)
	}
	pA, err := c.RT(0).Import(refA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(ctx, pA); err != nil {
		t.Fatal(err)
	}
	_, err = w.RunFunc(ctx,
		func(ctx context.Context, key string) error {
			_, err := kvB.Invoke(ctx, "get", []any{key})
			return err
		},
		func(ctx context.Context, key string, v int64) error {
			_, err := kvB.Invoke(ctx, "put", []any{key, v})
			return err
		})
	if err != nil {
		t.Fatal(err)
	}
	snapA, _ := kvA.Snapshot()
	snapB, _ := kvB.Snapshot()
	if !bytes.Equal(snapA, snapB) {
		t.Error("RunFunc diverged from Run")
	}
}

func TestTimerSummary(t *testing.T) {
	var tm Timer
	for i := 1; i <= 100; i++ {
		tm.Record(time.Duration(i) * time.Millisecond)
	}
	s := tm.Summary()
	if s.Count != 100 || s.Min != time.Millisecond || s.Max != 100*time.Millisecond {
		t.Errorf("summary = %+v", s)
	}
	if s.P50 < 45*time.Millisecond || s.P50 > 55*time.Millisecond {
		t.Errorf("p50 = %v", s.P50)
	}
	if s.P95 < 90*time.Millisecond {
		t.Errorf("p95 = %v", s.P95)
	}
	if (&Timer{}).Summary().Count != 0 {
		t.Error("empty timer summary")
	}
}

func TestTablePrint(t *testing.T) {
	tab := Table{Headers: []string{"design", "latency", "ratio"}}
	tab.Add("stub", 150*time.Microsecond, 1.0)
	tab.Add("caching proxy", 2*time.Microsecond, 0.01)
	var buf bytes.Buffer
	tab.Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "caching proxy") || !strings.Contains(out, "design") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("want 4 lines, got %d:\n%s", len(lines), out)
	}
}
