// Package cache implements the caching smart proxy — the paper's canonical
// example of a proxy that is more than stub code. A service exported
// through cache.Factory ships references whose Hint carries a *private*
// bootstrap blob; the caching proxies installed from those references talk
// to a server-side coordinator over a protocol of custom frame kinds that
// no other layer interprets. Reads are served from a local result cache;
// writes go through the coordinator, which keeps every cached copy
// coherent.
//
// Two coherence modes are provided (the service picks one — the client
// cannot tell the difference, which is the encapsulation point):
//
//   - ModeCallback: the coordinator tracks every caching proxy and pushes
//     invalidations on writes. Writes block until all copies acknowledge
//     (single-writer coherence; the cost of this is experiment E10).
//   - ModeLease: cached entries self-expire after a TTL; no callbacks, no
//     sharer tracking, but reads may be stale up to the lease length.
package cache

import (
	"time"

	"repro/internal/codec"
	"repro/internal/wire"
)

// Mode selects the coherence protocol.
type Mode uint8

// Coherence modes.
const (
	// ModeCallback invalidates cached copies on every write.
	ModeCallback Mode = 1
	// ModeLease lets cached entries live for a fixed TTL.
	ModeLease Mode = 2
)

// Private protocol frame kinds (carried opaquely by every lower layer).
const (
	kindRegister   = wire.KindCustom + 10 // proxy → coordinator: join the sharer set
	kindDeregister = wire.KindCustom + 11 // proxy → coordinator: leave
	kindRead       = wire.KindCustom + 12 // proxy → coordinator: versioned read
	kindWrite      = wire.KindCustom + 13 // proxy → coordinator: write-through
)

// hint is the private bootstrap data embedded in exported references:
// where the coordinator's control object lives, the mode, the lease TTL,
// which methods are cacheable reads, and the brownout staleness window.
// Only this package produces or parses it. StaleWindow is appended after
// the read list so hints from pre-brownout exporters decode with a zero
// window (brownout off) and pre-brownout importers ignore the trailing
// bytes — the same tolerance every payload header relies on.
type hint struct {
	Ctrl        wire.ObjectID
	Mode        Mode
	LeaseTTL    time.Duration
	Reads       []string
	StaleWindow time.Duration
}

func (h *hint) encode() []byte {
	buf := wire.AppendUvarint(nil, uint64(h.Ctrl))
	buf = append(buf, byte(h.Mode))
	buf = wire.AppendUvarint(buf, uint64(h.LeaseTTL))
	buf = wire.AppendUvarint(buf, uint64(len(h.Reads)))
	for _, r := range h.Reads {
		buf = wire.AppendString(buf, r)
	}
	return wire.AppendUvarint(buf, uint64(h.StaleWindow))
}

func decodeHint(src []byte) (hint, error) {
	var h hint
	ctrl, n, err := wire.Uvarint(src)
	if err != nil {
		return h, err
	}
	src = src[n:]
	if len(src) < 1 {
		return h, wire.ErrShortBuffer
	}
	h.Ctrl = wire.ObjectID(ctrl)
	h.Mode = Mode(src[0])
	src = src[1:]
	ttl, n, err := wire.Uvarint(src)
	if err != nil {
		return h, err
	}
	src = src[n:]
	h.LeaseTTL = time.Duration(ttl)
	count, n, err := wire.Uvarint(src)
	if err != nil {
		return h, err
	}
	src = src[n:]
	if count > uint64(len(src)) {
		return h, codec.ErrElementCount
	}
	h.Reads = make([]string, 0, count)
	for i := uint64(0); i < count; i++ {
		s, n, err := wire.String(src)
		if err != nil {
			return h, err
		}
		src = src[n:]
		h.Reads = append(h.Reads, s)
	}
	if len(src) > 0 {
		sw, _, err := wire.Uvarint(src)
		if err != nil {
			return h, err
		}
		h.StaleWindow = time.Duration(sw)
	}
	return h, nil
}

// versionedReply encodes a coordinator response: the object version plus
// the invocation results.
func encodeVersioned(version uint64, results []any) ([]byte, error) {
	return codec.Append(nil, []any{version, results})
}

func decodeVersioned(d *codec.Decoder, payload []byte) (uint64, []any, error) {
	vals, err := d.DecodeArgs(payload)
	if err != nil {
		return 0, nil, err
	}
	if len(vals) != 2 {
		return 0, nil, codec.ErrElementCount
	}
	version, ok := vals[0].(uint64)
	if !ok {
		return 0, nil, codec.ErrBadTag
	}
	results, ok := vals[1].([]any)
	if !ok {
		return 0, nil, codec.ErrBadTag
	}
	return version, results, nil
}
