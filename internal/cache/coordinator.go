package cache

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/vclock"
	"repro/internal/wire"
)

// coordinator is the server side of the caching protocol: it owns the
// object's version number, the sharer set (callback mode), and the
// write-through path. It registers one kernel object (the "control
// object") whose id is shipped in the reference hint.
type coordinator struct {
	rt     *core.Runtime
	inner  core.Service
	isRead func(string) bool
	mode   Mode
	sync   bool
	// cap mirrors the export's capability token; the private protocol
	// enforces it just like the standard path does.
	cap uint64

	// clock issues object versions. A Lamport clock rather than a bare
	// counter: registering proxies present the highest version they have
	// seen and the coordinator observes it, so versions never regress even
	// if a coordinator is rebuilt for an object whose proxies outlived it.
	clock vclock.Lamport

	mu      sync.Mutex
	sharers map[wire.ObjAddr]bool // callback objects of registered proxies

	// Registry-backed counters, scoped by the exported target address.
	writes      *obs.Counter
	invsSent    *obs.Counter
	sharerGauge *obs.Gauge

	srv *rpc.Server
}

func newCoordinator(rt *core.Runtime, inner core.Service, isRead func(string) bool, mode Mode, syncInv bool, target wire.ObjAddr) *coordinator {
	co := &coordinator{
		rt:      rt,
		inner:   inner,
		isRead:  isRead,
		mode:    mode,
		sync:    syncInv,
		sharers: make(map[wire.ObjAddr]bool),
	}
	scope := "cache.coord[" + target.String() + "]."
	reg := rt.Observer().Registry
	co.writes = reg.Counter(scope + "writes")
	co.invsSent = reg.Counter(scope + "invalidations_sent")
	co.sharerGauge = reg.Gauge(scope + "sharers")
	co.srv = rpc.NewServer(rpc.HandlerFunc(co.handle))
	return co
}

// handle processes the private protocol frames addressed to the control
// object.
func (co *coordinator) handle(req *rpc.Request) (wire.Kind, []byte, []byte) {
	switch req.Kind {
	case kindRegister:
		cb, n, err := wire.DecodeObjAddr(req.Frame.Payload)
		if err != nil {
			return 0, nil, core.EncodeInvokeError("register", err)
		}
		// The registrant may append the highest version it has observed;
		// fold it into the clock so our versions stay ahead of any copy
		// minted by a predecessor coordinator.
		if rest := req.Frame.Payload[n:]; len(rest) > 0 {
			if seen, _, err := wire.Uvarint(rest); err == nil && seen > 0 {
				co.clock.Observe(seen)
			}
		}
		co.mu.Lock()
		co.sharers[cb] = true
		co.sharerGauge.Set(int64(len(co.sharers)))
		co.mu.Unlock()
		return kindRegister, wire.AppendUvarint(nil, co.clock.Now()), nil
	case kindDeregister:
		cb, _, err := wire.DecodeObjAddr(req.Frame.Payload)
		if err != nil {
			return 0, nil, core.EncodeInvokeError("deregister", err)
		}
		co.mu.Lock()
		delete(co.sharers, cb)
		co.sharerGauge.Set(int64(len(co.sharers)))
		co.mu.Unlock()
		return kindDeregister, nil, nil
	case kindRead:
		return co.invoke(req, true)
	case kindWrite:
		return co.invoke(req, false)
	default:
		return 0, nil, core.EncodeInvokeError("", core.Errorf(core.CodeInternal, "", "cache: unexpected kind %v", req.Kind))
	}
}

func (co *coordinator) invoke(req *rpc.Request, read bool) (wire.Kind, []byte, []byte) {
	sc, budget, cap, method, args, err := core.DecodeRequestFull(co.rt.Decoder(), req.Frame.Payload)
	if err != nil {
		return 0, nil, core.EncodeInvokeError("", core.Errorf(core.CodeInternal, "", "%s", err))
	}
	if co.cap != 0 && cap != co.cap {
		return 0, nil, core.EncodeInvokeError(method, core.Errorf(core.CodeDenied, method, "capability required"))
	}
	if read && !co.isRead(method) {
		// A proxy asked to cache a write: refuse, protecting coherence
		// against version-skewed or buggy proxies.
		return 0, nil, core.EncodeInvokeError(method, core.Errorf(core.CodeBadArgs, method, "method is not a read"))
	}
	ctx := core.WithCaller(context.Background(), req.From)
	ctx, cancel := core.ApplyBudget(ctx, budget)
	defer cancel()
	finish := func(error) {}
	if sc.Trace != 0 {
		name := "cache.serve.write:" + method
		if read {
			name = "cache.serve.read:" + method
		}
		ctx = obs.ContextWithSpan(ctx, sc)
		ctx, finish = co.rt.Tracer().StartSpan(ctx, name, co.rt.Where())
	}
	results, err := co.inner.Invoke(ctx, method, args)
	if err != nil {
		finish(err)
		return 0, nil, core.EncodeInvokeError(method, err)
	}
	lowered, err := co.rt.LowerArgs(results)
	if err != nil {
		finish(err)
		return 0, nil, core.EncodeInvokeError(method, core.Errorf(core.CodeInternal, method, "%s", err))
	}
	var version uint64
	if read {
		version = co.clock.Now()
	} else {
		version = co.afterWrite(ctx, req.From)
	}
	finish(nil)
	reply, err := encodeVersioned(version, lowered)
	if err != nil {
		return 0, nil, core.EncodeInvokeError(method, core.Errorf(core.CodeInternal, method, "%s", err))
	}
	if read {
		return kindRead, reply, nil
	}
	return kindWrite, reply, nil
}

// afterWrite bumps the version and invalidates every cached copy except
// the writer's own (the writer flushes locally). Returns the new version.
// With sync invalidation the call blocks until all sharers acknowledge;
// those calls derive from ctx, so a traced write shows its invalidation
// round-trips as child spans.
func (co *coordinator) afterWrite(ctx context.Context, writer wire.Addr) uint64 {
	v := co.clock.Tick()
	co.writes.Inc()
	co.mu.Lock()
	var targets []wire.ObjAddr
	if co.mode == ModeCallback {
		for cb := range co.sharers {
			if cb.Addr == writer {
				continue
			}
			targets = append(targets, cb)
		}
		co.invsSent.Add(uint64(len(targets)))
	}
	co.mu.Unlock()

	if len(targets) == 0 {
		return v
	}
	payload := wire.AppendUvarint(nil, v)
	if co.sync {
		var wg sync.WaitGroup
		for _, cb := range targets {
			wg.Add(1)
			go func(cb wire.ObjAddr) {
				defer wg.Done()
				ictx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 2*time.Second)
				defer cancel()
				// Best effort: a dead sharer must not wedge writes forever.
				_, _ = co.rt.Client().Call(ictx, cb, wire.KindInvalidate, payload)
			}(cb)
		}
		wg.Wait()
		return v
	}
	for _, cb := range targets {
		f := &wire.Frame{
			Kind:    wire.KindInvalidate,
			Flags:   wire.FlagOneWay,
			ReqID:   co.rt.Kernel().NextReqID(),
			Dst:     cb.Addr,
			Object:  cb.Object,
			Payload: payload,
		}
		_ = co.rt.Kernel().Send(f)
	}
	return v
}

// wrapped is the service registered at the *standard* invocation path for
// this export: plain stub clients interoperate with caching clients, and
// their writes still invalidate cached copies.
type wrapped struct {
	co *coordinator
}

// Invoke implements core.Service.
func (w *wrapped) Invoke(ctx context.Context, method string, args []any) ([]any, error) {
	results, err := w.co.inner.Invoke(ctx, method, args)
	if err != nil {
		return nil, err
	}
	if !w.co.isRead(method) {
		writer := wire.Addr{}
		if from, ok := core.CallerFrom(ctx); ok {
			writer = from
		}
		w.co.afterWrite(ctx, writer)
	}
	return results, nil
}

// Stats reports coordinator counters (exposed for tests and benches).
type CoordinatorStats struct {
	Version           uint64
	Sharers           int
	Writes            uint64
	InvalidationsSent uint64
}

func (co *coordinator) stats() CoordinatorStats {
	co.mu.Lock()
	sharers := len(co.sharers)
	co.mu.Unlock()
	return CoordinatorStats{
		Version:           co.clock.Now(),
		Sharers:           sharers,
		Writes:            co.writes.Load(),
		InvalidationsSent: co.invsSent.Load(),
	}
}

// kernelHandler exposes the rpc server for registration.
func (co *coordinator) kernelHandler() kernel.Handler { return co.srv }

var _ fmt.Stringer = Mode(0)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeCallback:
		return "callback"
	case ModeLease:
		return "lease"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}
