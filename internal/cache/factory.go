package cache

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/wire"
)

// FactoryOption configures a Factory (see doc.go for the repo-wide
// functional-option convention).
type FactoryOption func(*Factory)

// WithMode selects the coherence protocol (default ModeCallback).
func WithMode(m Mode) FactoryOption {
	return func(f *Factory) { f.mode = m }
}

// WithLeaseTTL sets the lease length for ModeLease (default 100 ms).
func WithLeaseTTL(ttl time.Duration) FactoryOption {
	return func(f *Factory) {
		if ttl > 0 {
			f.leaseTTL = ttl
		}
	}
}

// WithStaleWindow enables brownout degradation: when the coordinator
// sheds a read under overload (CodeOverload), proxies serve the cached
// result instead — even an invalidated or lease-expired one — as long
// as it is younger than the window. Staleness stays bounded: entries
// older than the window are never served and never retained. Zero
// (the default) disables serve-stale entirely. Like every cache policy
// knob this is the *service's* choice; clients cannot tell a degraded
// read from a fresh one except by the degraded span in the trace.
func WithStaleWindow(d time.Duration) FactoryOption {
	return func(f *Factory) {
		if d > 0 {
			f.staleWindow = d
		}
	}
}

// WithAsyncInvalidation makes callback-mode writes return without waiting
// for sharer acknowledgements (faster writes, a window of staleness) — an
// ablation knob for experiment E10.
func WithAsyncInvalidation() FactoryOption {
	return func(f *Factory) { f.syncInv = false }
}

// Factory is the proxy factory for cached services. The *service side*
// constructs it, declaring which methods are cacheable reads — the client
// never needs to know the policy, the mode, or that caching happens at
// all. Implements core.ProxyFactory.
type Factory struct {
	reads       []string
	mode        Mode
	leaseTTL    time.Duration
	syncInv     bool
	staleWindow time.Duration

	mu     sync.Mutex
	coords map[wire.ObjAddr]*coordinator // by exported target, for stats
}

var _ core.ProxyFactory = (*Factory)(nil)

// NewFactory builds a caching factory; readMethods lists the methods whose
// results may be cached (everything else is treated as a write).
func NewFactory(readMethods []string, opts ...FactoryOption) *Factory {
	f := &Factory{
		reads:    append([]string(nil), readMethods...),
		mode:     ModeCallback,
		leaseTTL: 100 * time.Millisecond,
		syncInv:  true,
		coords:   make(map[wire.ObjAddr]*coordinator),
	}
	for _, o := range opts {
		o(f)
	}
	return f
}

// Export implements the server half of core.ProxyFactory: it sets up
// the coordinator, registers
// the control object, and produces the private hint. The export's
// capability token (if any) also guards the private read/write protocol.
func (f *Factory) Export(rt *core.Runtime, svc core.Service, ref codec.Ref) (core.Service, []byte, error) {
	readSet := make(map[string]bool, len(f.reads))
	for _, r := range f.reads {
		readSet[r] = true
	}
	isRead := func(m string) bool { return readSet[m] }
	co := newCoordinator(rt, svc, isRead, f.mode, f.syncInv, ref.Target)
	co.cap = ref.Cap
	ctrlID := rt.Kernel().Register(co.kernelHandler())
	h := hint{Ctrl: ctrlID, Mode: f.mode, LeaseTTL: f.leaseTTL, Reads: f.reads, StaleWindow: f.staleWindow}

	f.mu.Lock()
	f.coords[ref.Target] = co
	f.mu.Unlock()
	return &wrapped{co: co}, h.encode(), nil
}

// New implements core.ProxyFactory: the importing side builds the caching
// proxy from the reference's private hint.
func (f *Factory) New(rt *core.Runtime, ref codec.Ref) (core.Proxy, error) {
	h, err := decodeHint(ref.Hint)
	if err != nil {
		return nil, fmt.Errorf("cache: bad hint in %s: %w", ref, err)
	}
	return newProxy(rt, ref, h)
}

// CoordinatorStatsFor reports server-side counters for an exported target
// (tests and benches).
func (f *Factory) CoordinatorStatsFor(target wire.ObjAddr) (CoordinatorStats, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	co, ok := f.coords[target]
	if !ok {
		return CoordinatorStats{}, false
	}
	return co.stats(), true
}
