package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// kvService is a tiny keyed store: get is a read, put is a write.
type kvService struct {
	mu   sync.Mutex
	m    map[string]string
	gets int
	puts int
}

func newKV() *kvService { return &kvService{m: make(map[string]string)} }

func (s *kvService) Invoke(ctx context.Context, method string, args []any) ([]any, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch method {
	case "get":
		k, _ := args[0].(string)
		s.gets++
		v, ok := s.m[k]
		if !ok {
			return nil, core.Errorf(core.CodeApp, method, "no such key %q", k)
		}
		return []any{v}, nil
	case "put":
		k, _ := args[0].(string)
		v, _ := args[1].(string)
		s.puts++
		s.m[k] = v
		return nil, nil
	default:
		return nil, core.NoSuchMethod(method)
	}
}

func (s *kvService) counts() (gets, puts int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gets, s.puts
}

// cacheWorld wires one server runtime and n client runtimes, with the
// caching factory registered everywhere.
type cacheWorld struct {
	factory *Factory
	svc     *kvService
	ref     codec.Ref
	server  *core.Runtime
	clients []*core.Runtime
}

func newCacheWorld(t *testing.T, nClients int, opts ...FactoryOption) *cacheWorld {
	t.Helper()
	net := netsim.New()
	t.Cleanup(net.Close)
	w := &cacheWorld{factory: NewFactory([]string{"get"}, opts...), svc: newKV()}
	mk := func(id wire.NodeID) *core.Runtime {
		ep, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		node := kernel.NewNode(ep)
		t.Cleanup(func() { node.Close() })
		ktx, err := node.NewContext()
		if err != nil {
			t.Fatal(err)
		}
		rt := core.NewRuntime(ktx)
		rt.RegisterProxyType("KV", w.factory)
		return rt
	}
	w.server = mk(1)
	for i := 0; i < nClients; i++ {
		w.clients = append(w.clients, mk(wire.NodeID(i+2)))
	}
	ref, err := w.server.Export(w.svc, "KV")
	if err != nil {
		t.Fatal(err)
	}
	w.ref = ref
	return w
}

func (w *cacheWorld) proxy(t *testing.T, i int) *Proxy {
	t.Helper()
	p, err := w.clients[i].Import(w.ref)
	if err != nil {
		t.Fatal(err)
	}
	cp, ok := p.(*Proxy)
	if !ok {
		t.Fatalf("import produced %T, want cache.Proxy", p)
	}
	return cp
}

func TestReadsHitCache(t *testing.T) {
	w := newCacheWorld(t, 1)
	p := w.proxy(t, 0)
	ctx := context.Background()
	if _, err := p.Invoke(ctx, "put", "k", "v1"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		res, err := p.Invoke(ctx, "get", "k")
		if err != nil {
			t.Fatal(err)
		}
		if res[0] != "v1" {
			t.Fatalf("get = %v", res)
		}
	}
	gets, puts := w.svc.counts()
	if gets != 1 || puts != 1 {
		t.Errorf("server saw %d gets %d puts; want 1 get (9 cache hits), 1 put", gets, puts)
	}
	st := p.Stats()
	if st.Hits != 9 || st.Misses != 1 || st.Writes != 1 {
		t.Errorf("proxy stats = %+v", st)
	}
}

func TestWriteInvalidatesOtherSharers(t *testing.T) {
	w := newCacheWorld(t, 2)
	pA, pB := w.proxy(t, 0), w.proxy(t, 1)
	ctx := context.Background()

	if _, err := pA.Invoke(ctx, "put", "k", "old"); err != nil {
		t.Fatal(err)
	}
	// Both cache the old value.
	for _, p := range []*Proxy{pA, pB} {
		if res, err := p.Invoke(ctx, "get", "k"); err != nil || res[0] != "old" {
			t.Fatalf("warm read = %v, %v", res, err)
		}
	}
	// A writes; sync invalidation means B's copy is gone when put returns.
	if _, err := pA.Invoke(ctx, "put", "k", "new"); err != nil {
		t.Fatal(err)
	}
	res, err := pB.Invoke(ctx, "get", "k")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != "new" {
		t.Errorf("B read %v after A's write, want \"new\" (coherence violated)", res[0])
	}
	if st := pB.Stats(); st.Invalidations == 0 {
		t.Error("B never processed an invalidation")
	}
	cs, ok := w.factory.CoordinatorStatsFor(w.ref.Target)
	if !ok {
		t.Fatal("no coordinator stats")
	}
	if cs.Writes != 2 || cs.InvalidationsSent == 0 || cs.Sharers != 2 {
		t.Errorf("coordinator stats = %+v", cs)
	}
}

func TestWriterFlushesOwnCache(t *testing.T) {
	w := newCacheWorld(t, 1)
	p := w.proxy(t, 0)
	ctx := context.Background()
	if _, err := p.Invoke(ctx, "put", "k", "v1"); err != nil {
		t.Fatal(err)
	}
	if res, _ := p.Invoke(ctx, "get", "k"); res[0] != "v1" {
		t.Fatal("warm failed")
	}
	if _, err := p.Invoke(ctx, "put", "k", "v2"); err != nil {
		t.Fatal(err)
	}
	res, err := p.Invoke(ctx, "get", "k")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != "v2" {
		t.Errorf("writer read its own stale cache: %v", res[0])
	}
}

func TestLeaseModeExpires(t *testing.T) {
	w := newCacheWorld(t, 1, WithMode(ModeLease), WithLeaseTTL(30*time.Millisecond))
	p := w.proxy(t, 0)
	ctx := context.Background()
	if _, err := p.Invoke(ctx, "put", "k", "v"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke(ctx, "get", "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke(ctx, "get", "k"); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("within lease: stats = %+v", st)
	}
	time.Sleep(50 * time.Millisecond)
	if _, err := p.Invoke(ctx, "get", "k"); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Misses != 2 {
		t.Errorf("after lease expiry stats = %+v, want second miss", st)
	}
}

func TestLeaseModeCanServeStale(t *testing.T) {
	// Documented behaviour: lease mode trades coherence for callback-free
	// operation; within the lease a sharer can read a stale value.
	w := newCacheWorld(t, 2, WithMode(ModeLease), WithLeaseTTL(10*time.Second))
	pA, pB := w.proxy(t, 0), w.proxy(t, 1)
	ctx := context.Background()
	if _, err := pA.Invoke(ctx, "put", "k", "old"); err != nil {
		t.Fatal(err)
	}
	if res, _ := pB.Invoke(ctx, "get", "k"); res[0] != "old" {
		t.Fatal("warm failed")
	}
	if _, err := pA.Invoke(ctx, "put", "k", "new"); err != nil {
		t.Fatal(err)
	}
	res, err := pB.Invoke(ctx, "get", "k")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != "old" {
		t.Errorf("lease-mode read = %v; expected stale \"old\" within lease", res[0])
	}
}

func TestStubInteropWriteInvalidates(t *testing.T) {
	// A client that never registered the caching factory gets a plain stub
	// (default factory); its writes go through the standard path and must
	// still invalidate caching clients.
	w := newCacheWorld(t, 2)
	pCache := w.proxy(t, 0)
	ctx := context.Background()

	// Client 1 builds a *stub* by bypassing the registered factory.
	stub := core.NewStub(w.clients[1], w.ref)
	if _, err := pCache.Invoke(ctx, "put", "k", "old"); err != nil {
		t.Fatal(err)
	}
	if res, _ := pCache.Invoke(ctx, "get", "k"); res[0] != "old" {
		t.Fatal("warm failed")
	}
	if _, err := stub.Invoke(ctx, "put", "k", "new"); err != nil {
		t.Fatal(err)
	}
	// Stub write's invalidation is issued after the inner invoke; give the
	// ack round a moment (stub path invalidation is synchronous before the
	// standard reply is produced, so one read suffices).
	res, err := pCache.Invoke(ctx, "get", "k")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != "new" {
		t.Errorf("caching client read %v after stub write, want \"new\"", res[0])
	}
	// And the stub can read what caching clients wrote.
	if _, err := pCache.Invoke(ctx, "put", "k2", "via-cache"); err != nil {
		t.Fatal(err)
	}
	res, err = stub.Invoke(ctx, "get", "k2")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != "via-cache" {
		t.Errorf("stub read = %v", res[0])
	}
}

func TestCloseDeregisters(t *testing.T) {
	w := newCacheWorld(t, 1)
	p := w.proxy(t, 0)
	if _, err := p.Invoke(context.Background(), "put", "k", "v"); err != nil {
		t.Fatal(err)
	}
	cs, _ := w.factory.CoordinatorStatsFor(w.ref.Target)
	if cs.Sharers != 1 {
		t.Fatalf("sharers = %d, want 1", cs.Sharers)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	cs, _ = w.factory.CoordinatorStatsFor(w.ref.Target)
	if cs.Sharers != 0 {
		t.Errorf("sharers after close = %d", cs.Sharers)
	}
	if _, err := p.Invoke(context.Background(), "get", "k"); !errors.Is(err, core.ErrProxyClosed) {
		t.Errorf("invoke on closed = %v", err)
	}
	if err := p.Close(); err != nil {
		t.Errorf("double close = %v", err)
	}
}

func TestCoordinatorRefusesCachingWrites(t *testing.T) {
	// A tampered hint that declares "put" a read must be rejected by the
	// coordinator — the server enforces its own policy.
	w := newCacheWorld(t, 1)
	h, err := decodeHint(w.ref.Hint)
	if err != nil {
		t.Fatal(err)
	}
	h.Reads = append(h.Reads, "put")
	badRef := w.ref
	badRef.Hint = h.encode()

	p, err := newProxy(w.clients[0], badRef, h)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Invoke(context.Background(), "put", "k", "v")
	var ie *core.InvokeError
	if !errors.As(err, &ie) || ie.Code != core.CodeBadArgs {
		t.Errorf("tampered write = %v, want bad-args refusal", err)
	}
}

func TestAppErrorsPassThrough(t *testing.T) {
	w := newCacheWorld(t, 1)
	p := w.proxy(t, 0)
	_, err := p.Invoke(context.Background(), "get", "missing")
	var ie *core.InvokeError
	if !errors.As(err, &ie) || ie.Code != core.CodeApp {
		t.Errorf("err = %v", err)
	}
	// Errors must not be cached: bind the key, read again, see the value.
	if _, err := p.Invoke(context.Background(), "put", "missing", "now-present"); err != nil {
		t.Fatal(err)
	}
	res, err := p.Invoke(context.Background(), "get", "missing")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != "now-present" {
		t.Errorf("res = %v", res)
	}
}

func TestManySharersCoherent(t *testing.T) {
	const sharers = 8
	w := newCacheWorld(t, sharers)
	ctx := context.Background()
	proxies := make([]*Proxy, sharers)
	for i := range proxies {
		proxies[i] = w.proxy(t, i)
	}
	if _, err := proxies[0].Invoke(ctx, "put", "k", "v0"); err != nil {
		t.Fatal(err)
	}
	for _, p := range proxies {
		if _, err := p.Invoke(ctx, "get", "k"); err != nil {
			t.Fatal(err)
		}
	}
	// Rounds of writes from rotating writers; every sharer must observe
	// the latest value immediately after the write returns.
	for round := 0; round < 5; round++ {
		writer := proxies[round%sharers]
		want := fmt.Sprintf("v%d", round+1)
		if _, err := writer.Invoke(ctx, "put", "k", want); err != nil {
			t.Fatal(err)
		}
		for i, p := range proxies {
			res, err := p.Invoke(ctx, "get", "k")
			if err != nil {
				t.Fatal(err)
			}
			if res[0] != want {
				t.Fatalf("round %d: sharer %d read %v, want %s", round, i, res[0], want)
			}
		}
	}
}

func TestBypassWriterInvalidatesRemoteCaches(t *testing.T) {
	// A co-located client (bypass proxy) writes with no marshalling at
	// all — but its write must still go through the coordination wrapper
	// and invalidate remote caching proxies.
	w := newCacheWorld(t, 1)
	ctx := context.Background()
	local, err := w.server.Import(w.ref) // bypass: same context as export
	if err != nil {
		t.Fatal(err)
	}
	remote := w.proxy(t, 0)
	if _, err := local.Invoke(ctx, "put", "k", "old"); err != nil {
		t.Fatal(err)
	}
	if res, _ := remote.Invoke(ctx, "get", "k"); res[0] != "old" {
		t.Fatal("warm failed")
	}
	if _, err := local.Invoke(ctx, "put", "k", "new"); err != nil {
		t.Fatal(err)
	}
	res, err := remote.Invoke(ctx, "get", "k")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != "new" {
		t.Errorf("remote read %v after co-located write, want \"new\"", res[0])
	}
}

func TestRegisterObservesPresentedVersion(t *testing.T) {
	// A proxy that has already seen version V (from a prior coordinator
	// incarnation) presents it at registration; the coordinator's Lamport
	// clock must jump past it so new writes supersede old copies.
	w := newCacheWorld(t, 1)
	h, err := decodeHint(w.ref.Hint)
	if err != nil {
		t.Fatal(err)
	}
	// Craft a registration presenting a high version directly.
	cb := wire.ObjAddr{Addr: w.clients[0].Addr(), Object: 999}
	payload := wire.AppendUvarint(wire.AppendObjAddr(nil, cb), 1000)
	ctrl := wire.ObjAddr{Addr: w.ref.Target.Addr, Object: h.Ctrl}
	reply, err := w.clients[0].Client().Call(context.Background(), ctrl, kindRegister, payload)
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := wire.Uvarint(reply)
	if err != nil {
		t.Fatal(err)
	}
	if v < 1000 {
		t.Errorf("register reply version = %d, want >= presented 1000", v)
	}
	// And the next write mints a version beyond it.
	p := w.proxy(t, 0)
	if _, err := p.Invoke(context.Background(), "put", "k", "v"); err != nil {
		t.Fatal(err)
	}
	cs, _ := w.factory.CoordinatorStatsFor(w.ref.Target)
	if cs.Version <= 1000 {
		t.Errorf("post-write version = %d, want > 1000", cs.Version)
	}
}

func TestHintRoundTrip(t *testing.T) {
	in := hint{Ctrl: 42, Mode: ModeLease, LeaseTTL: 250 * time.Millisecond,
		Reads: []string{"a", "b", "c"}, StaleWindow: 3 * time.Second}
	out, err := decodeHint(in.encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.Ctrl != in.Ctrl || out.Mode != in.Mode || out.LeaseTTL != in.LeaseTTL ||
		len(out.Reads) != 3 || out.Reads[2] != "c" || out.StaleWindow != in.StaleWindow {
		t.Errorf("round-trip = %+v", out)
	}
	// StaleWindow is a trailing field for compatibility: a hint encoded by
	// a pre-brownout exporter (nothing after the read list) must decode
	// with a zero window, and every other truncation must error, not panic.
	buf := in.encode()
	oldLen := len(buf) - len(wire.AppendUvarint(nil, uint64(in.StaleWindow)))
	for i := 0; i < len(buf); i++ {
		got, err := decodeHint(buf[:i])
		if i == oldLen {
			if err != nil || got.StaleWindow != 0 {
				t.Errorf("pre-brownout hint: err=%v StaleWindow=%v, want nil/0", err, got.StaleWindow)
			}
			continue
		}
		if err == nil {
			t.Errorf("decodeHint accepted %d-byte prefix", i)
		}
	}
}

func TestModeString(t *testing.T) {
	if ModeCallback.String() != "callback" || ModeLease.String() != "lease" || Mode(9).String() != "mode(9)" {
		t.Error("Mode.String mismatch")
	}
}

func TestProtectedCacheCoordinatorDeniesForgery(t *testing.T) {
	// Protection extends to the private caching protocol: a proxy built
	// from a forged reference (correct hint, wrong capability) is denied
	// on both its read and write paths.
	net := netsim.New()
	t.Cleanup(net.Close)
	factory := NewFactory([]string{"get"})
	mk := func(id wire.NodeID) *core.Runtime {
		ep, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		node := kernel.NewNode(ep)
		t.Cleanup(func() { node.Close() })
		ktx, err := node.NewContext()
		if err != nil {
			t.Fatal(err)
		}
		rt := core.NewRuntime(ktx)
		rt.RegisterProxyType("KV", factory)
		return rt
	}
	server, client := mk(1), mk(2)
	ref, err := server.Export(newKV(), "KV", core.Protected())
	if err != nil {
		t.Fatal(err)
	}
	legit, err := client.Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := legit.Invoke(context.Background(), "put", "k", "v"); err != nil {
		t.Fatalf("legit write: %v", err)
	}

	forged := ref
	forged.Cap = ref.Cap ^ 1
	h, err := decodeHint(forged.Hint)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := newProxy(client, forged, h)
	if err != nil {
		t.Fatal(err)
	}
	var ie *core.InvokeError
	if _, err := fp.Invoke(context.Background(), "get", "k"); !errors.As(err, &ie) || ie.Code != core.CodeDenied {
		t.Errorf("forged cached read = %v, want CodeDenied", err)
	}
	if _, err := fp.Invoke(context.Background(), "put", "k", "evil"); !errors.As(err, &ie) || ie.Code != core.CodeDenied {
		t.Errorf("forged write = %v, want CodeDenied", err)
	}
}
