package cache

import (
	"context"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/wire"
)

// ProxyStats counts client-side cache behaviour.
type ProxyStats struct {
	Hits          uint64
	Misses        uint64
	Writes        uint64
	Invalidations uint64
	Stale         uint64 // brownout serves (degraded reads under overload)
}

// Proxy is the caching client-side representative. It keeps a result cache
// keyed by (method, arguments); reads hit locally when the cached version
// is current (callback mode) or the lease is fresh (lease mode); writes go
// through the coordinator. It implements core.Proxy.
type Proxy struct {
	rt   *core.Runtime
	ref  codec.Ref
	h    hint
	now  func() time.Time
	ctrl wire.ObjAddr

	reads map[string]bool

	mu       sync.Mutex
	version  uint64 // last version heard from the coordinator
	entries  map[string]cacheEntry
	cbObject wire.ObjectID
	closed   bool

	// Registry-backed counters, scoped by importer->target so every proxy
	// stays distinguishable even under a cluster-shared registry.
	hits   *obs.Counter
	misses *obs.Counter
	writes *obs.Counter
	invs   *obs.Counter
	stale  *obs.Counter // brownout serves (degraded reads)
}

type cacheEntry struct {
	results []any
	version uint64
	filled  time.Time
}

func newProxy(rt *core.Runtime, ref codec.Ref, h hint) (*Proxy, error) {
	p := &Proxy{
		rt:      rt,
		ref:     ref,
		h:       h,
		now:     time.Now,
		ctrl:    wire.ObjAddr{Addr: ref.Target.Addr, Object: h.Ctrl},
		reads:   make(map[string]bool, len(h.Reads)),
		entries: make(map[string]cacheEntry),
	}
	for _, r := range h.Reads {
		p.reads[r] = true
	}
	scope := "cache.proxy[" + rt.Where() + "->" + ref.Target.String() + "]."
	reg := rt.Observer().Registry
	p.hits = reg.Counter(scope + "hits")
	p.misses = reg.Counter(scope + "misses")
	p.writes = reg.Counter(scope + "writes")
	p.invs = reg.Counter(scope + "invalidations")
	p.stale = reg.Counter(scope + "stale")
	if h.Mode == ModeCallback {
		// Install the callback object and join the sharer set. The
		// version in the reply seeds our view.
		p.cbObject = rt.Kernel().Register(kernel.HandlerFunc(p.handleInvalidate))
		cb := wire.ObjAddr{Addr: rt.Addr(), Object: p.cbObject}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		// Present the highest version we have observed (zero for a fresh
		// proxy); the coordinator's clock absorbs it.
		payload := wire.AppendUvarint(wire.AppendObjAddr(nil, cb), p.version)
		reply, err := rt.Client().Call(ctx, p.ctrl, kindRegister, payload)
		if err != nil {
			rt.Kernel().Unregister(p.cbObject)
			return nil, err
		}
		v, _, err := wire.Uvarint(reply)
		if err != nil {
			rt.Kernel().Unregister(p.cbObject)
			return nil, err
		}
		p.version = v
	}
	return p, nil
}

// handleInvalidate processes coordinator invalidations (the push half of
// the private protocol). It flushes the cache and acknowledges.
func (p *Proxy) handleInvalidate(ktx *kernel.Context, f *wire.Frame) {
	v, _, err := wire.Uvarint(f.Payload)
	if err == nil {
		p.mu.Lock()
		if v > p.version {
			p.version = v
		}
		p.flushLocked()
		p.mu.Unlock()
		p.invs.Inc()
	}
	if f.Flags&wire.FlagOneWay == 0 {
		_ = ktx.Respond(f, wire.KindAck, nil)
	}
}

// Invoke implements core.Proxy.
func (p *Proxy) Invoke(ctx context.Context, method string, args ...any) ([]any, error) {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return nil, core.ErrProxyClosed
	}
	lowered, err := p.rt.LowerArgs(args)
	if err != nil {
		return nil, core.Errorf(core.CodeInternal, method, "%s", err)
	}
	// The payload lives in a pooled buffer until the invocation resolves:
	// a cache hit never materializes a key string (the map lookup below
	// converts in place without allocating), which is most of what makes
	// the hit path cheap. The buffer is released on every exit; fill and
	// the transports copy what they keep.
	pb := wire.GetBuf()
	defer pb.Release()
	if pb.B, err = core.AppendRequest(pb.B[:0], p.ref.Cap, method, lowered); err != nil {
		return nil, core.Errorf(core.CodeInternal, method, "%s", err)
	}
	payload := pb.B

	if !p.reads[method] {
		return p.write(ctx, method, payload)
	}
	// The cache key is the headerless payload: trace headers vary per
	// invocation and must never reach the keyed bytes, or every lookup
	// would be a miss. Cache hits are served without a span — they are
	// pure local work on the ns scale; misses cross the network and are
	// traced like any other hop.
	if results, ok := p.cachedResult(payload); ok {
		p.hits.Inc()
		return results, nil
	}
	p.misses.Inc()
	ctx, finish := p.rt.Tracer().StartChild(ctx, "cache.miss:"+method, p.rt.Where())
	results, err := p.readThrough(ctx, method, payload)
	finish(err)
	return results, err
}

// readThrough fetches a read from the coordinator and fills the cache.
// When the coordinator sheds the read under overload and the service
// configured a staleness window, the proxy degrades instead of failing:
// it serves the retained (stale) entry, bounded by the window, and
// records the degradation as a span so traces show which answers were
// brownout serves.
func (p *Proxy) readThrough(ctx context.Context, method string, payload []byte) ([]any, error) {
	reply, err := p.coordCall(ctx, kindRead, payload)
	if err != nil {
		if core.IsOverload(err) {
			if results, ok := p.staleResult(payload); ok {
				p.stale.Inc()
				if sc, traced := obs.SpanFromContext(ctx); traced {
					tr := p.rt.Tracer()
					tr.Record(obs.Span{
						Trace: sc.Trace, ID: tr.NewSpanID(), Parent: sc.Span,
						Name: "degraded:" + method, Where: p.rt.Where(),
						Start: p.now(),
					})
				}
				return results, nil
			}
		}
		return nil, core.RemoteToInvokeError(method, err)
	}
	version, results, err := decodeVersioned(p.rt.Decoder(), reply)
	if err != nil {
		return nil, core.Errorf(core.CodeInternal, method, "%s", err)
	}
	p.fill(payload, version, results)
	return results, nil
}

// coordCall sends one control-protocol request to the coordinator through
// the runtime's shared circuit breaker, with ctx headers (deadline budget
// + trace span) prefixed. The cache proxy thus rides the same
// fault-tolerance substrate as plain stubs: a coordinator node that stops
// answering trips the breaker for every proxy pointed at it.
func (p *Proxy) coordCall(ctx context.Context, kind wire.Kind, payload []byte) ([]byte, error) {
	f, err := p.rt.GuardedCall(ctx, p.ctrl, kind, append(core.AppendCtxHeaders(nil, ctx), payload...))
	if err != nil {
		return nil, err
	}
	return f.Payload, nil
}

func (p *Proxy) cachedResult(payload []byte) ([]any, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	// string(payload) in the index expression compiles to an allocation-free
	// lookup; a key string only exists once fill stores one.
	e, ok := p.entries[string(payload)]
	if !ok {
		return nil, false
	}
	var expired bool
	switch p.h.Mode {
	case ModeCallback:
		expired = e.version != p.version
	case ModeLease:
		expired = p.now().Sub(e.filled) >= p.h.LeaseTTL
	}
	if expired {
		// A stale entry is still brownout material while it is younger
		// than the staleness window; beyond it (or with brownout off)
		// it is dead weight.
		if p.h.StaleWindow <= 0 || p.now().Sub(e.filled) >= p.h.StaleWindow {
			delete(p.entries, string(payload))
		}
		return nil, false
	}
	return e.results, true
}

// staleResult reports the retained entry for a read the coordinator just
// shed, if brownout is configured and the entry is within the staleness
// window. Freshness is irrelevant here — the normal path already missed.
func (p *Proxy) staleResult(payload []byte) ([]any, bool) {
	if p.h.StaleWindow <= 0 {
		return nil, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.entries[string(payload)]
	if !ok || p.now().Sub(e.filled) >= p.h.StaleWindow {
		return nil, false
	}
	return e.results, true
}

// flushLocked invalidates the whole cache. Without a staleness window
// that means dropping every entry; with one, entries young enough to
// serve during a brownout are retained — they are version- or
// lease-stale, so the normal read path will never return them.
func (p *Proxy) flushLocked() {
	if p.h.StaleWindow <= 0 {
		p.entries = make(map[string]cacheEntry)
		return
	}
	cutoff := p.now().Add(-p.h.StaleWindow)
	for k, e := range p.entries {
		if e.filled.Before(cutoff) {
			delete(p.entries, k)
		}
	}
}

// fill stores a read result unless the world moved on while the read was
// in flight (a newer version was announced), which prevents a slow read
// from resurrecting stale data after an invalidation.
func (p *Proxy) fill(payload []byte, version uint64, results []any) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch p.h.Mode {
	case ModeCallback:
		if version < p.version {
			return
		}
		if version > p.version {
			// The read observed a version we haven't been told about yet;
			// adopt it and drop anything older.
			p.version = version
			p.flushLocked()
		}
		// The map assignment copies payload into a real key string, so the
		// caller is free to recycle its buffer afterwards.
		p.entries[string(payload)] = cacheEntry{results: results, version: version, filled: p.now()}
	case ModeLease:
		p.entries[string(payload)] = cacheEntry{results: results, filled: p.now()}
	}
}

func (p *Proxy) write(ctx context.Context, method string, payload []byte) ([]any, error) {
	p.writes.Inc()
	ctx, finish := p.rt.Tracer().StartChild(ctx, "cache.write:"+method, p.rt.Where())
	results, err := p.writeThrough(ctx, method, payload)
	finish(err)
	return results, err
}

func (p *Proxy) writeThrough(ctx context.Context, method string, payload []byte) ([]any, error) {
	reply, err := p.coordCall(ctx, kindWrite, payload)
	if err != nil {
		return nil, core.RemoteToInvokeError(method, err)
	}
	version, results, err := decodeVersioned(p.rt.Decoder(), reply)
	if err != nil {
		return nil, core.Errorf(core.CodeInternal, method, "%s", err)
	}
	// Our own copy is stale now; flush and adopt the post-write version.
	// This is a full drop, not flushLocked: retaining entries we ourselves
	// just overwrote would let a brownout violate read-your-writes.
	p.mu.Lock()
	if version > p.version {
		p.version = version
	}
	p.entries = make(map[string]cacheEntry)
	p.mu.Unlock()
	return results, nil
}

// Ref implements core.Proxy.
func (p *Proxy) Ref() codec.Ref { return p.ref }

// Stats returns cache counters.
func (p *Proxy) Stats() ProxyStats {
	return ProxyStats{
		Hits:          p.hits.Load(),
		Misses:        p.misses.Load(),
		Writes:        p.writes.Load(),
		Invalidations: p.invs.Load(),
		Stale:         p.stale.Load(),
	}
}

// Close implements core.Proxy: it leaves the sharer set and releases the
// callback object.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	cbObj := p.cbObject
	p.entries = nil
	p.mu.Unlock()

	p.rt.ForgetProxy(p.ref.Target)
	if p.h.Mode == ModeCallback {
		cb := wire.ObjAddr{Addr: p.rt.Addr(), Object: cbObj}
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_, _ = p.rt.Client().Call(ctx, p.ctrl, kindDeregister, wire.AppendObjAddr(nil, cb))
		p.rt.Kernel().Unregister(cbObj)
	}
	return nil
}
