package group

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/rpc"
	"repro/internal/wire"
)

func runtimes(t *testing.T, n int, opts ...netsim.NetworkOption) []*core.Runtime {
	t.Helper()
	net := netsim.New(opts...)
	t.Cleanup(net.Close)
	out := make([]*core.Runtime, 0, n)
	for i := 0; i < n; i++ {
		ep, err := net.Attach(wire.NodeID(i + 1))
		if err != nil {
			t.Fatal(err)
		}
		node := kernel.NewNode(ep)
		t.Cleanup(func() { node.Close() })
		ktx, err := node.NewContext()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, core.NewRuntime(ktx))
	}
	return out
}

// recorder collects delivered payloads with their sequence numbers.
type recorder struct {
	mu   sync.Mutex
	seqs []uint64
	msgs []string
}

func (r *recorder) deliver(seq uint64, payload []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seqs = append(r.seqs, seq)
	r.msgs = append(r.msgs, string(payload))
}

func (r *recorder) snapshot() ([]uint64, []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]uint64(nil), r.seqs...), append([]string(nil), r.msgs...)
}

func TestBroadcastReachesAllMembersInOrder(t *testing.T) {
	rts := runtimes(t, 4)
	seq := NewSequencer(rts[0])
	ctx := context.Background()

	recs := make([]*recorder, 3)
	members := make([]*Member, 3)
	for i := 0; i < 3; i++ {
		recs[i] = &recorder{}
		m, _, err := Join(ctx, rts[i+1], seq.Addr(), recs[i].deliver)
		if err != nil {
			t.Fatal(err)
		}
		members[i] = m
	}
	if seq.Members() != 3 {
		t.Fatalf("Members = %d", seq.Members())
	}

	const count = 20
	for i := 0; i < count; i++ {
		if _, err := members[i%3].Broadcast(ctx, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i, rec := range recs {
		seqs, msgs := rec.snapshot()
		if len(msgs) != count {
			t.Fatalf("member %d got %d messages, want %d", i, len(msgs), count)
		}
		for j := 1; j < len(seqs); j++ {
			if seqs[j] != seqs[j-1]+1 {
				t.Fatalf("member %d: sequence gap %d → %d", i, seqs[j-1], seqs[j])
			}
		}
	}
	// All members saw the identical order.
	_, m0 := recs[0].snapshot()
	for i := 1; i < 3; i++ {
		_, mi := recs[i].snapshot()
		for j := range m0 {
			if m0[j] != mi[j] {
				t.Fatalf("order divergence at %d: %q vs %q", j, m0[j], mi[j])
			}
		}
	}
}

func TestBroadcastIsSynchronous(t *testing.T) {
	// When Broadcast returns, every member has already observed the
	// message (the replica layer's linearizable-write guarantee rests on
	// this).
	rts := runtimes(t, 3)
	seq := NewSequencer(rts[0])
	ctx := context.Background()
	rec1, rec2 := &recorder{}, &recorder{}
	m1, _, err := Join(ctx, rts[1], seq.Addr(), rec1.deliver)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Join(ctx, rts[2], seq.Addr(), rec2.deliver); err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Broadcast(ctx, []byte("sync")); err != nil {
		t.Fatal(err)
	}
	_, msgs := rec2.snapshot()
	if len(msgs) != 1 || msgs[0] != "sync" {
		t.Fatalf("member 2 state at broadcast return: %v", msgs)
	}
}

func TestJoinBootstrap(t *testing.T) {
	rts := runtimes(t, 2)
	var joined []wire.ObjAddr
	seq := NewSequencer(rts[0], WithOnJoin(func(m wire.ObjAddr) (uint64, []byte, error) {
		joined = append(joined, m)
		return 42, []byte("snapshot-at-42"), nil
	}))
	rec := &recorder{}
	m, boot, err := Join(context.Background(), rts[1], seq.Addr(), rec.deliver)
	if err != nil {
		t.Fatal(err)
	}
	if string(boot.Boot) != "snapshot-at-42" {
		t.Errorf("boot = %q", boot.Boot)
	}
	if boot.BootSeq != 42 {
		t.Errorf("boot seq = %d, want 42", boot.BootSeq)
	}
	if boot.Epoch != 1 {
		t.Errorf("boot epoch = %d, want 1", boot.Epoch)
	}
	if len(joined) != 1 || joined[0] != m.Self() {
		t.Errorf("join callback saw %v", joined)
	}
	m.mu.Lock()
	next := m.next
	m.mu.Unlock()
	if next != 43 {
		t.Errorf("member next = %d, want 43", next)
	}
}

func TestOutOfOrderDeliveryBuffered(t *testing.T) {
	// Deliver seq 3 before 2 by hand and verify the member holds it back.
	rts := runtimes(t, 2)
	seq := NewSequencer(rts[0])
	rec := &recorder{}
	m, _, err := Join(context.Background(), rts[1], seq.Addr(), rec.deliver)
	if err != nil {
		t.Fatal(err)
	}
	_ = m
	// Bypass the sequencer: inject deliveries directly at the member's
	// delivery object using a raw client from the sequencer's runtime.
	inject := func(s uint64, payload string) {
		msg, err := encodeDeliver(s, []byte(payload))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rts[0].Client().Call(context.Background(), m.Self(), KindDeliver, msg); err != nil {
			t.Fatal(err)
		}
	}
	inject(2, "second")
	if _, msgs := rec.snapshot(); len(msgs) != 0 {
		t.Fatalf("gap message delivered early: %v", msgs)
	}
	inject(1, "first")
	_, msgs := rec.snapshot()
	if len(msgs) != 2 || msgs[0] != "first" || msgs[1] != "second" {
		t.Fatalf("msgs = %v", msgs)
	}
	if _, buffered, _ := m.Stats(); buffered != 1 {
		t.Errorf("buffered = %d, want 1", buffered)
	}
	// Duplicate of an already-delivered seq is dropped.
	inject(1, "dup")
	if _, msgs := rec.snapshot(); len(msgs) != 2 {
		t.Errorf("duplicate delivered: %v", msgs)
	}
}

func TestLeave(t *testing.T) {
	rts := runtimes(t, 3)
	seq := NewSequencer(rts[0])
	ctx := context.Background()
	rec1, rec2 := &recorder{}, &recorder{}
	m1, _, err := Join(ctx, rts[1], seq.Addr(), rec1.deliver)
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := Join(ctx, rts[2], seq.Addr(), rec2.deliver)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Leave(ctx); err != nil {
		t.Fatal(err)
	}
	if seq.Members() != 1 {
		t.Fatalf("Members after leave = %d", seq.Members())
	}
	if _, err := m1.Broadcast(ctx, []byte("post-leave")); err != nil {
		t.Fatal(err)
	}
	if _, msgs := rec2.snapshot(); len(msgs) != 0 {
		t.Errorf("departed member received %v", msgs)
	}
	if _, err := m2.Broadcast(ctx, nil); err != ErrNotMember {
		t.Errorf("Broadcast after leave = %v", err)
	}
	if err := m2.Leave(ctx); err != ErrNotMember {
		t.Errorf("double Leave = %v", err)
	}
}

func TestDeadMemberEvicted(t *testing.T) {
	rts := runtimes(t, 3)
	seq := NewSequencer(rts[0])
	ctx := context.Background()
	rec := &recorder{}
	if _, _, err := Join(ctx, rts[1], seq.Addr(), rec.deliver); err != nil {
		t.Fatal(err)
	}
	dead, _, err := Join(ctx, rts[2], seq.Addr(), func(uint64, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	// Kill the dead member's delivery object without a polite Leave.
	rts[2].Kernel().Unregister(dead.id)

	if _, err := seq.Broadcast(ctx, []byte("probe")); err != nil {
		t.Fatal(err)
	}
	// Unregistered object answers with a kernel error, so the delivery
	// fails fast and the member is evicted on the first broadcast.
	if got := seq.Members(); got != 1 {
		t.Errorf("Members after evict = %d, want 1", got)
	}
	// Healthy member still received the message.
	if _, msgs := rec.snapshot(); len(msgs) != 1 {
		t.Errorf("healthy member msgs = %v", msgs)
	}
}

func TestConcurrentBroadcasters(t *testing.T) {
	rts := runtimes(t, 4)
	seq := NewSequencer(rts[0])
	ctx := context.Background()
	recs := make([]*recorder, 3)
	members := make([]*Member, 3)
	for i := range members {
		recs[i] = &recorder{}
		m, _, err := Join(ctx, rts[i+1], seq.Addr(), recs[i].deliver)
		if err != nil {
			t.Fatal(err)
		}
		members[i] = m
	}
	var wg sync.WaitGroup
	const perMember = 15
	for i, m := range members {
		wg.Add(1)
		go func(i int, m *Member) {
			defer wg.Done()
			for j := 0; j < perMember; j++ {
				if _, err := m.Broadcast(ctx, []byte(fmt.Sprintf("%d-%d", i, j))); err != nil {
					t.Error(err)
					return
				}
			}
		}(i, m)
	}
	wg.Wait()
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, m0 := recs[0].snapshot()
		if len(m0) == 3*perMember || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	_, ref := recs[0].snapshot()
	if len(ref) != 3*perMember {
		t.Fatalf("member 0 got %d messages", len(ref))
	}
	for i := 1; i < 3; i++ {
		_, mi := recs[i].snapshot()
		if len(mi) != len(ref) {
			t.Fatalf("member %d got %d messages, want %d", i, len(mi), len(ref))
		}
		for j := range ref {
			if ref[j] != mi[j] {
				t.Fatalf("total order violated at %d: %q vs %q", j, ref[j], mi[j])
			}
		}
	}
}

// encodeDeliver mirrors the sequencer's delivery encoding for injection
// tests (at the default epoch).
func encodeDeliver(seq uint64, payload []byte) ([]byte, error) {
	return deliverMessage(1, seq, payload)
}

func TestStaleEpochFencedNotEvicted(t *testing.T) {
	// A member that has moved to a newer epoch fences the old sequencer:
	// the broadcast fails with ErrFenced and the member is NOT evicted —
	// a deposed sequencer's suspicions carry no authority.
	rts := runtimes(t, 2)
	seq := NewSequencer(rts[0])
	rec := &recorder{}
	m, _, err := Join(context.Background(), rts[1], seq.Addr(), rec.deliver)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate adoption of a successor at epoch 2.
	m.Pause(2)
	m.ResumeAt(2, 0, false, nil)

	if _, err := seq.Broadcast(context.Background(), []byte("stale")); !errors.Is(err, ErrFenced) {
		t.Fatalf("Broadcast from deposed sequencer = %v, want ErrFenced", err)
	}
	if got := seq.Members(); got != 1 {
		t.Errorf("Members after fence = %d, want 1 (no eviction)", got)
	}
	if _, msgs := rec.snapshot(); len(msgs) != 0 {
		t.Errorf("fenced delivery was applied: %v", msgs)
	}
	if _, _, fenced := m.Stats(); fenced != 1 {
		t.Errorf("fenced counter = %d, want 1", fenced)
	}
}

func TestAheadEpochRefusedUntilResync(t *testing.T) {
	// A delivery from an epoch newer than the member's is an ordinary
	// refusal (the member is the stale party and must resync first), so
	// the new sequencer evicts it — rejoin happens at the service layer.
	rts := runtimes(t, 3)
	old := NewSequencer(rts[0])
	rec := &recorder{}
	m, _, err := Join(context.Background(), rts[1], old.Addr(), rec.deliver)
	if err != nil {
		t.Fatal(err)
	}
	succ := NewSequencer(rts[2], WithEpoch(2), WithStartSeq(0))
	succ.AddMember(m.Self(), 0)
	if _, err := succ.Broadcast(context.Background(), []byte("ahead")); err != nil {
		t.Fatal(err)
	}
	if got := succ.Members(); got != 0 {
		t.Errorf("successor members = %d, want 0 (stale member evicted)", got)
	}
	if _, msgs := rec.snapshot(); len(msgs) != 0 {
		t.Errorf("ahead-epoch delivery was applied: %v", msgs)
	}
}

func TestPauseBuffersResumeDrains(t *testing.T) {
	// While paused, deliveries at the member's epoch are acknowledged and
	// buffered without being applied; ResumeAt drains them in order.
	rts := runtimes(t, 2)
	seq := NewSequencer(rts[0])
	rec := &recorder{}
	m, _, err := Join(context.Background(), rts[1], seq.Addr(), rec.deliver)
	if err != nil {
		t.Fatal(err)
	}
	m.Pause(1)
	for i := 0; i < 2; i++ {
		if _, err := seq.Broadcast(context.Background(), []byte(fmt.Sprintf("m%d", i+1))); err != nil {
			t.Fatalf("broadcast to paused member: %v", err)
		}
	}
	if seq.Members() != 1 {
		t.Fatalf("paused member was evicted")
	}
	if _, msgs := rec.snapshot(); len(msgs) != 0 {
		t.Fatalf("paused member applied %v", msgs)
	}
	m.ResumeAt(1, 0, false, nil)
	_, msgs := rec.snapshot()
	if len(msgs) != 2 || msgs[0] != "m1" || msgs[1] != "m2" {
		t.Fatalf("drained msgs = %v", msgs)
	}
}

func TestResumeRewindResetsPosition(t *testing.T) {
	// A full-snapshot transfer rewinds the delivery position even when the
	// member had applied beyond it (divergent tail at an epoch boundary):
	// re-deliveries of the overwritten range must apply, not drop as dups.
	rts := runtimes(t, 2)
	seq := NewSequencer(rts[0])
	rec := &recorder{}
	m, _, err := Join(context.Background(), rts[1], seq.Addr(), rec.deliver)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := seq.Broadcast(context.Background(), []byte(fmt.Sprintf("old%d", i+1))); err != nil {
			t.Fatal(err)
		}
	}
	// Snapshot transfer at epoch 2 whose state point is seq 1: seqs 2–3
	// were a divergent tail.
	m.Pause(2)
	m.ResumeAt(2, 1, true, nil)
	inject, err := deliverMessage(2, 2, []byte("new2"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rts[0].Client().Call(context.Background(), m.Self(), KindDeliver, inject); err != nil {
		t.Fatal(err)
	}
	_, msgs := rec.snapshot()
	want := []string{"old1", "old2", "old3", "new2"}
	if len(msgs) != len(want) {
		t.Fatalf("msgs = %v, want %v", msgs, want)
	}
	for i := range want {
		if msgs[i] != want[i] {
			t.Fatalf("msgs[%d] = %q, want %q", i, msgs[i], want[i])
		}
	}
}

// TestSequencerIntrospectionAndCustomHandler exercises the read-side
// surface the replica layer leans on (Seq/Epoch/MemberSeqs/HasMember,
// member epoch), the side-channel request handler members expose to
// repair protocols, explicit removal, and the eviction callback.
func TestSequencerIntrospectionAndCustomHandler(t *testing.T) {
	rts := runtimes(t, 3)
	ctx := context.Background()

	var evMu sync.Mutex
	var evicted []wire.ObjAddr
	seq := NewSequencer(rts[0],
		WithDeliverTimeout(60*time.Millisecond),
		WithOnEvict(func(m wire.ObjAddr) {
			evMu.Lock()
			evicted = append(evicted, m)
			evMu.Unlock()
		}))

	rec := &recorder{}
	kindPing := wire.KindCustom + 99
	m, _, err := Join(ctx, rts[1], seq.Addr(), rec.deliver,
		WithRequestHandler(func(req *rpc.Request) (wire.Kind, []byte, []byte) {
			if req.Kind != kindPing {
				t.Errorf("handler saw kind %v", req.Kind)
			}
			return req.Kind, []byte("pong"), nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch() != 1 || seq.Epoch() != 1 {
		t.Fatalf("epochs = (%d, %d), want (1, 1)", m.Epoch(), seq.Epoch())
	}

	for i := 0; i < 2; i++ {
		if _, err := m.Broadcast(ctx, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if got := seq.Seq(); got != 2 {
		t.Fatalf("Seq = %d, want 2", got)
	}
	if got := seq.MemberSeqs()[m.Self()]; got != 2 {
		t.Fatalf("MemberSeqs[self] = %d, want 2", got)
	}
	if !seq.HasMember(m.Self()) {
		t.Fatal("HasMember(self) = false")
	}

	// The member's registered object answers non-delivery kinds through
	// the side-channel handler: that is how repair peers talk to each
	// other directly.
	reply, err := rts[2].Client().Call(ctx, m.Self(), kindPing, []byte("ping"))
	if err != nil {
		t.Fatalf("side-channel call: %v", err)
	}
	if string(reply) != "pong" {
		t.Fatalf("side-channel reply = %q", reply)
	}

	// A member whose delivery object does not exist is evicted on the
	// first broadcast, and the eviction callback names it.
	bogus := wire.ObjAddr{Addr: rts[2].Addr(), Object: 9999}
	seq.AddMember(bogus, seq.Seq())
	if _, err := m.Broadcast(ctx, []byte("y")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		evMu.Lock()
		n := len(evicted)
		evMu.Unlock()
		if n > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	evMu.Lock()
	if len(evicted) != 1 || evicted[0] != bogus {
		t.Fatalf("evicted = %v, want [%v]", evicted, bogus)
	}
	evMu.Unlock()
	if seq.HasMember(bogus) {
		t.Fatal("bogus member survived eviction")
	}

	// Explicit removal: the member is gone and deliveries stop reaching
	// it (removal is server-side; the member itself learns via resync).
	seq.RemoveMember(m.Self())
	if seq.HasMember(m.Self()) || seq.Members() != 0 {
		t.Fatalf("member survived removal (n=%d)", seq.Members())
	}
	_, before := rec.snapshot()
	if _, err := seq.Broadcast(ctx, []byte("z")); err != nil {
		t.Fatal(err)
	}
	if _, after := rec.snapshot(); len(after) != len(before) {
		t.Fatalf("removed member still receives deliveries: %v", after)
	}
}
