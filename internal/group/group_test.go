package group

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/wire"
)

func runtimes(t *testing.T, n int, opts ...netsim.NetworkOption) []*core.Runtime {
	t.Helper()
	net := netsim.New(opts...)
	t.Cleanup(net.Close)
	out := make([]*core.Runtime, 0, n)
	for i := 0; i < n; i++ {
		ep, err := net.Attach(wire.NodeID(i + 1))
		if err != nil {
			t.Fatal(err)
		}
		node := kernel.NewNode(ep)
		t.Cleanup(func() { node.Close() })
		ktx, err := node.NewContext()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, core.NewRuntime(ktx))
	}
	return out
}

// recorder collects delivered payloads with their sequence numbers.
type recorder struct {
	mu   sync.Mutex
	seqs []uint64
	msgs []string
}

func (r *recorder) deliver(seq uint64, payload []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seqs = append(r.seqs, seq)
	r.msgs = append(r.msgs, string(payload))
}

func (r *recorder) snapshot() ([]uint64, []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]uint64(nil), r.seqs...), append([]string(nil), r.msgs...)
}

func TestBroadcastReachesAllMembersInOrder(t *testing.T) {
	rts := runtimes(t, 4)
	seq := NewSequencer(rts[0])
	ctx := context.Background()

	recs := make([]*recorder, 3)
	members := make([]*Member, 3)
	for i := 0; i < 3; i++ {
		recs[i] = &recorder{}
		m, _, err := Join(ctx, rts[i+1], seq.Addr(), recs[i].deliver)
		if err != nil {
			t.Fatal(err)
		}
		members[i] = m
	}
	if seq.Members() != 3 {
		t.Fatalf("Members = %d", seq.Members())
	}

	const count = 20
	for i := 0; i < count; i++ {
		if _, err := members[i%3].Broadcast(ctx, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i, rec := range recs {
		seqs, msgs := rec.snapshot()
		if len(msgs) != count {
			t.Fatalf("member %d got %d messages, want %d", i, len(msgs), count)
		}
		for j := 1; j < len(seqs); j++ {
			if seqs[j] != seqs[j-1]+1 {
				t.Fatalf("member %d: sequence gap %d → %d", i, seqs[j-1], seqs[j])
			}
		}
	}
	// All members saw the identical order.
	_, m0 := recs[0].snapshot()
	for i := 1; i < 3; i++ {
		_, mi := recs[i].snapshot()
		for j := range m0 {
			if m0[j] != mi[j] {
				t.Fatalf("order divergence at %d: %q vs %q", j, m0[j], mi[j])
			}
		}
	}
}

func TestBroadcastIsSynchronous(t *testing.T) {
	// When Broadcast returns, every member has already observed the
	// message (the replica layer's linearizable-write guarantee rests on
	// this).
	rts := runtimes(t, 3)
	seq := NewSequencer(rts[0])
	ctx := context.Background()
	rec1, rec2 := &recorder{}, &recorder{}
	m1, _, err := Join(ctx, rts[1], seq.Addr(), rec1.deliver)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Join(ctx, rts[2], seq.Addr(), rec2.deliver); err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Broadcast(ctx, []byte("sync")); err != nil {
		t.Fatal(err)
	}
	_, msgs := rec2.snapshot()
	if len(msgs) != 1 || msgs[0] != "sync" {
		t.Fatalf("member 2 state at broadcast return: %v", msgs)
	}
}

func TestJoinBootstrap(t *testing.T) {
	rts := runtimes(t, 2)
	var joined []wire.ObjAddr
	seq := NewSequencer(rts[0], WithOnJoin(func(m wire.ObjAddr) (uint64, []byte, error) {
		joined = append(joined, m)
		return 42, []byte("snapshot-at-42"), nil
	}))
	rec := &recorder{}
	m, boot, err := Join(context.Background(), rts[1], seq.Addr(), rec.deliver)
	if err != nil {
		t.Fatal(err)
	}
	if string(boot) != "snapshot-at-42" {
		t.Errorf("boot = %q", boot)
	}
	if len(joined) != 1 || joined[0] != m.Self() {
		t.Errorf("join callback saw %v", joined)
	}
	m.mu.Lock()
	next := m.next
	m.mu.Unlock()
	if next != 43 {
		t.Errorf("member next = %d, want 43", next)
	}
}

func TestOutOfOrderDeliveryBuffered(t *testing.T) {
	// Deliver seq 3 before 2 by hand and verify the member holds it back.
	rts := runtimes(t, 2)
	seq := NewSequencer(rts[0])
	rec := &recorder{}
	m, _, err := Join(context.Background(), rts[1], seq.Addr(), rec.deliver)
	if err != nil {
		t.Fatal(err)
	}
	_ = m
	// Bypass the sequencer: inject deliveries directly at the member's
	// delivery object using a raw client from the sequencer's runtime.
	inject := func(s uint64, payload string) {
		msg, err := encodeDeliver(s, []byte(payload))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rts[0].Client().Call(context.Background(), m.Self(), KindDeliver, msg); err != nil {
			t.Fatal(err)
		}
	}
	inject(2, "second")
	if _, msgs := rec.snapshot(); len(msgs) != 0 {
		t.Fatalf("gap message delivered early: %v", msgs)
	}
	inject(1, "first")
	_, msgs := rec.snapshot()
	if len(msgs) != 2 || msgs[0] != "first" || msgs[1] != "second" {
		t.Fatalf("msgs = %v", msgs)
	}
	if _, buffered := m.Stats(); buffered != 1 {
		t.Errorf("buffered = %d, want 1", buffered)
	}
	// Duplicate of an already-delivered seq is dropped.
	inject(1, "dup")
	if _, msgs := rec.snapshot(); len(msgs) != 2 {
		t.Errorf("duplicate delivered: %v", msgs)
	}
}

func TestLeave(t *testing.T) {
	rts := runtimes(t, 3)
	seq := NewSequencer(rts[0])
	ctx := context.Background()
	rec1, rec2 := &recorder{}, &recorder{}
	m1, _, err := Join(ctx, rts[1], seq.Addr(), rec1.deliver)
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := Join(ctx, rts[2], seq.Addr(), rec2.deliver)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Leave(ctx); err != nil {
		t.Fatal(err)
	}
	if seq.Members() != 1 {
		t.Fatalf("Members after leave = %d", seq.Members())
	}
	if _, err := m1.Broadcast(ctx, []byte("post-leave")); err != nil {
		t.Fatal(err)
	}
	if _, msgs := rec2.snapshot(); len(msgs) != 0 {
		t.Errorf("departed member received %v", msgs)
	}
	if _, err := m2.Broadcast(ctx, nil); err != ErrNotMember {
		t.Errorf("Broadcast after leave = %v", err)
	}
	if err := m2.Leave(ctx); err != ErrNotMember {
		t.Errorf("double Leave = %v", err)
	}
}

func TestDeadMemberEvicted(t *testing.T) {
	rts := runtimes(t, 3)
	seq := NewSequencer(rts[0])
	ctx := context.Background()
	rec := &recorder{}
	if _, _, err := Join(ctx, rts[1], seq.Addr(), rec.deliver); err != nil {
		t.Fatal(err)
	}
	dead, _, err := Join(ctx, rts[2], seq.Addr(), func(uint64, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	// Kill the dead member's delivery object without a polite Leave.
	rts[2].Kernel().Unregister(dead.id)

	if _, err := seq.Broadcast(ctx, []byte("probe")); err != nil {
		t.Fatal(err)
	}
	// Unregistered object answers with a kernel error, so the delivery
	// fails fast and the member is evicted on the first broadcast.
	if got := seq.Members(); got != 1 {
		t.Errorf("Members after evict = %d, want 1", got)
	}
	// Healthy member still received the message.
	if _, msgs := rec.snapshot(); len(msgs) != 1 {
		t.Errorf("healthy member msgs = %v", msgs)
	}
}

func TestConcurrentBroadcasters(t *testing.T) {
	rts := runtimes(t, 4)
	seq := NewSequencer(rts[0])
	ctx := context.Background()
	recs := make([]*recorder, 3)
	members := make([]*Member, 3)
	for i := range members {
		recs[i] = &recorder{}
		m, _, err := Join(ctx, rts[i+1], seq.Addr(), recs[i].deliver)
		if err != nil {
			t.Fatal(err)
		}
		members[i] = m
	}
	var wg sync.WaitGroup
	const perMember = 15
	for i, m := range members {
		wg.Add(1)
		go func(i int, m *Member) {
			defer wg.Done()
			for j := 0; j < perMember; j++ {
				if _, err := m.Broadcast(ctx, []byte(fmt.Sprintf("%d-%d", i, j))); err != nil {
					t.Error(err)
					return
				}
			}
		}(i, m)
	}
	wg.Wait()
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, m0 := recs[0].snapshot()
		if len(m0) == 3*perMember || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	_, ref := recs[0].snapshot()
	if len(ref) != 3*perMember {
		t.Fatalf("member 0 got %d messages", len(ref))
	}
	for i := 1; i < 3; i++ {
		_, mi := recs[i].snapshot()
		if len(mi) != len(ref) {
			t.Fatalf("member %d got %d messages, want %d", i, len(mi), len(ref))
		}
		for j := range ref {
			if ref[j] != mi[j] {
				t.Fatalf("total order violated at %d: %q vs %q", j, ref[j], mi[j])
			}
		}
	}
}

// encodeDeliver mirrors the sequencer's delivery encoding for injection
// tests.
func encodeDeliver(seq uint64, payload []byte) ([]byte, error) {
	return deliverMessage(seq, payload)
}
