// Package group implements process-group communication: membership plus
// sequencer-based totally-ordered broadcast. One context runs the
// Sequencer; any number of Members join it. Every broadcast is assigned a
// sequence number by the sequencer and delivered to all members in
// sequence order, regardless of network reordering — the delivery
// machinery buffers gaps. The replication layer (internal/replica) builds
// state-machine replication directly on this.
package group

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/rpc"
	"repro/internal/wire"
)

// Protocol kinds. They are exported so a service may implement the
// sequencer's join side itself (internal/replica's primary does: its
// replicated proxies join it as ordinary group members).
const (
	// KindJoin asks to join the group; the reply is EncodeJoinReply data.
	KindJoin = wire.KindCustom + 30
	// KindLeave departs the group.
	KindLeave = wire.KindCustom + 31
	// KindBcast asks the sequencer to order and deliver a payload.
	KindBcast = wire.KindCustom + 32
	// KindDeliver carries one ordered payload to a member.
	KindDeliver = wire.KindCustom + 33
)

// Errors returned by the group layer.
var (
	// ErrNotMember reports an operation before Join or after Leave.
	ErrNotMember = errors.New("group: not a member")
)

// defaultDeliverTimeout bounds one member's acknowledgement of a delivery
// unless WithDeliverTimeout overrides it.
const defaultDeliverTimeout = 5 * time.Second

// SequencerOption configures a Sequencer.
type SequencerOption func(*Sequencer)

// WithDeliverTimeout overrides how long the sequencer waits for one
// member to acknowledge a delivery before suspecting it dead (default 5s;
// tests shrink it to exercise eviction quickly).
func WithDeliverTimeout(d time.Duration) SequencerOption {
	return func(s *Sequencer) {
		if d > 0 {
			s.deliverTimeout = d
		}
	}
}

// WithOnJoin installs a callback invoked (under no locks) whenever a member
// joins; its return value is handed to the joiner as bootstrap state (the
// replica layer ships a state snapshot this way). The uint64 is the
// sequence number the snapshot corresponds to.
func WithOnJoin(fn func(member wire.ObjAddr) (uint64, []byte, error)) SequencerOption {
	return func(s *Sequencer) { s.onJoin = fn }
}

// Sequencer orders broadcasts for one group. Register its Handler in a
// kernel context and hand out its address.
type Sequencer struct {
	rt             *core.Runtime
	onJoin         func(wire.ObjAddr) (uint64, []byte, error)
	deliverTimeout time.Duration

	mu      sync.Mutex
	seq     uint64
	members map[wire.ObjAddr]bool

	srv *rpc.Server
	id  wire.ObjectID
}

// NewSequencer creates a sequencer and registers its control object in
// rt's context.
func NewSequencer(rt *core.Runtime, opts ...SequencerOption) *Sequencer {
	s := &Sequencer{
		rt:             rt,
		members:        make(map[wire.ObjAddr]bool),
		deliverTimeout: defaultDeliverTimeout,
	}
	for _, o := range opts {
		o(s)
	}
	s.srv = rpc.NewServer(rpc.HandlerFunc(s.handle))
	s.id = rt.Kernel().Register(s.srv)
	return s
}

// Addr is the sequencer's control address, which members join.
func (s *Sequencer) Addr() wire.ObjAddr {
	return wire.ObjAddr{Addr: s.rt.Addr(), Object: s.id}
}

// Members reports the current membership size.
func (s *Sequencer) Members() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.members)
}

// Seq reports the last assigned sequence number.
func (s *Sequencer) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

func (s *Sequencer) handle(req *rpc.Request) (wire.Kind, []byte, []byte) {
	switch req.Kind {
	case KindJoin:
		member, _, err := wire.DecodeObjAddr(req.Frame.Payload)
		if err != nil {
			return 0, nil, core.EncodeInvokeError("join", err)
		}
		var bootSeq uint64
		var boot []byte
		s.mu.Lock()
		if s.onJoin == nil {
			bootSeq = s.seq
			s.members[member] = true
			s.mu.Unlock()
		} else {
			// Hold the lock across the snapshot so no broadcast can slip
			// between the snapshot's sequence point and membership.
			var err error
			bootSeq, boot, err = s.onJoin(member)
			if err != nil {
				s.mu.Unlock()
				return 0, nil, core.EncodeInvokeError("join", err)
			}
			s.members[member] = true
			s.mu.Unlock()
		}
		reply, err := codec.Append(nil, []any{bootSeq, boot})
		if err != nil {
			return 0, nil, core.EncodeInvokeError("join", err)
		}
		return KindJoin, reply, nil
	case KindLeave:
		member, _, err := wire.DecodeObjAddr(req.Frame.Payload)
		if err != nil {
			return 0, nil, core.EncodeInvokeError("leave", err)
		}
		s.mu.Lock()
		delete(s.members, member)
		s.mu.Unlock()
		return KindLeave, nil, nil
	case KindBcast:
		seq, err := s.Broadcast(context.Background(), req.Frame.Payload)
		if err != nil {
			return 0, nil, core.EncodeInvokeError("bcast", err)
		}
		return KindBcast, wire.AppendUvarint(nil, seq), nil
	default:
		return 0, nil, core.EncodeInvokeError("", core.Errorf(core.CodeInternal, "", "group: unexpected kind %v", req.Kind))
	}
}

// Broadcast assigns the next sequence number to payload and delivers it to
// every member, blocking until all reachable members acknowledge. Members
// that fail to acknowledge within the delivery timeout are dropped from
// the group (fail-stop suspicion).
func (s *Sequencer) Broadcast(ctx context.Context, payload []byte) (uint64, error) {
	s.mu.Lock()
	s.seq++
	seq := s.seq
	targets := make([]wire.ObjAddr, 0, len(s.members))
	for m := range s.members {
		targets = append(targets, m)
	}
	s.mu.Unlock()

	msg, err := deliverMessage(seq, payload)
	if err != nil {
		return 0, fmt.Errorf("group: encode deliver: %w", err)
	}
	var wg sync.WaitGroup
	var failedMu sync.Mutex
	var failed []wire.ObjAddr
	for _, m := range targets {
		wg.Add(1)
		go func(m wire.ObjAddr) {
			defer wg.Done()
			dctx, cancel := context.WithTimeout(ctx, s.deliverTimeout)
			defer cancel()
			if _, err := s.rt.Client().Call(dctx, m, KindDeliver, msg); err != nil {
				failedMu.Lock()
				failed = append(failed, m)
				failedMu.Unlock()
			}
		}(m)
	}
	wg.Wait()
	if len(failed) > 0 {
		s.mu.Lock()
		for _, m := range failed {
			delete(s.members, m)
		}
		s.mu.Unlock()
	}
	return seq, nil
}

// MemberOption configures a Member.
type MemberOption func(*Member)

// Member is one group participant: it registers a delivery object, joins
// the sequencer, and hands ordered payloads to the deliver callback.
// The callback runs on the delivery path, one payload at a time, in
// sequence order.
type Member struct {
	rt      *core.Runtime
	seqAddr wire.ObjAddr
	deliver func(seq uint64, payload []byte)

	// deliverMu serializes the drain-and-callback path so payloads reach
	// the callback strictly in sequence order even when deliveries race.
	deliverMu sync.Mutex

	mu      sync.Mutex
	next    uint64 // next sequence number to deliver
	pending map[uint64][]byte
	joined  bool
	id      wire.ObjectID

	delivered uint64
	buffered  uint64
}

// Join creates a member, registers its delivery object, and joins the
// group at seqAddr. The returned bootstrap blob is whatever the
// sequencer's WithOnJoin callback produced (nil without one). deliver
// receives every broadcast ordered by sequence number, starting after the
// bootstrap point.
func Join(ctx context.Context, rt *core.Runtime, seqAddr wire.ObjAddr, deliver func(seq uint64, payload []byte), opts ...MemberOption) (*Member, []byte, error) {
	m := &Member{
		rt:      rt,
		seqAddr: seqAddr,
		deliver: deliver,
		pending: make(map[uint64][]byte),
	}
	for _, o := range opts {
		o(m)
	}
	srv := rpc.NewServer(rpc.HandlerFunc(m.handleDeliver))
	m.id = rt.Kernel().Register(srv)
	self := wire.ObjAddr{Addr: rt.Addr(), Object: m.id}

	reply, err := rt.Client().Call(ctx, seqAddr, KindJoin, wire.AppendObjAddr(nil, self))
	if err != nil {
		rt.Kernel().Unregister(m.id)
		return nil, nil, fmt.Errorf("group: join: %w", err)
	}
	vals, err := codec.DecodeArgs(reply)
	if err != nil || len(vals) != 2 {
		rt.Kernel().Unregister(m.id)
		return nil, nil, fmt.Errorf("group: malformed join reply")
	}
	bootSeq, _ := vals[0].(uint64)
	boot, _ := vals[1].([]byte)
	m.mu.Lock()
	m.next = bootSeq + 1
	m.joined = true
	m.mu.Unlock()
	return m, boot, nil
}

// Self is the member's delivery address (its group identity).
func (m *Member) Self() wire.ObjAddr {
	return wire.ObjAddr{Addr: m.rt.Addr(), Object: m.id}
}

// handleDeliver processes one delivery, reordering as needed.
func (m *Member) handleDeliver(req *rpc.Request) (wire.Kind, []byte, []byte) {
	vals, err := codec.DecodeArgs(req.Frame.Payload)
	if err != nil || len(vals) != 2 {
		return 0, nil, core.EncodeInvokeError("deliver", core.Errorf(core.CodeBadArgs, "deliver", "malformed delivery"))
	}
	seq, _ := vals[0].(uint64)
	payload, _ := vals[1].([]byte)

	m.deliverMu.Lock()
	defer m.deliverMu.Unlock()

	m.mu.Lock()
	if seq < m.next {
		// Duplicate of something already delivered: ack and drop.
		m.mu.Unlock()
		return KindDeliver, nil, nil
	}
	m.pending[seq] = payload
	if seq != m.next {
		m.buffered++
	}
	// Drain everything now in order.
	var ready [][2]any
	for {
		p, ok := m.pending[m.next]
		if !ok {
			break
		}
		delete(m.pending, m.next)
		ready = append(ready, [2]any{m.next, p})
		m.next++
		m.delivered++
	}
	m.mu.Unlock()

	for _, r := range ready {
		m.deliver(r[0].(uint64), r[1].([]byte))
	}
	return KindDeliver, nil, nil
}

// Broadcast sends payload through the sequencer, returning its sequence
// number once every member (including this one) has acknowledged delivery.
func (m *Member) Broadcast(ctx context.Context, payload []byte) (uint64, error) {
	m.mu.Lock()
	joined := m.joined
	m.mu.Unlock()
	if !joined {
		return 0, ErrNotMember
	}
	reply, err := m.rt.Client().Call(ctx, m.seqAddr, KindBcast, payload)
	if err != nil {
		return 0, err
	}
	seq, _, err := wire.Uvarint(reply)
	if err != nil {
		return 0, fmt.Errorf("group: malformed bcast reply: %w", err)
	}
	return seq, nil
}

// Stats reports (delivered in order, arrived out of order and buffered).
func (m *Member) Stats() (delivered, buffered uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.delivered, m.buffered
}

// Leave departs the group and releases the delivery object.
func (m *Member) Leave(ctx context.Context) error {
	m.mu.Lock()
	if !m.joined {
		m.mu.Unlock()
		return ErrNotMember
	}
	m.joined = false
	m.mu.Unlock()
	_, err := m.rt.Client().Call(ctx, m.seqAddr, KindLeave, wire.AppendObjAddr(nil, m.Self()))
	m.rt.Kernel().Unregister(m.id)
	return err
}

// deliverMessage encodes one ordered delivery: [seq, payload].
func deliverMessage(seq uint64, payload []byte) ([]byte, error) {
	return codec.Append(nil, []any{seq, payload})
}

// EncodeJoinReply builds the reply a join handler sends to a joining
// Member: the sequence number its bootstrap state corresponds to, plus the
// bootstrap blob itself. Services that front a sequencer (replica's
// primary) answer KindJoin frames with this.
func EncodeJoinReply(bootSeq uint64, boot []byte) ([]byte, error) {
	return codec.Append(nil, []any{bootSeq, boot})
}

// AddMember inserts a member directly (used by services that handle the
// join protocol themselves and coordinate their own snapshot/sequence
// atomicity before calling this).
func (s *Sequencer) AddMember(m wire.ObjAddr) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.members[m] = true
}

// RemoveMember deletes a member directly.
func (s *Sequencer) RemoveMember(m wire.ObjAddr) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.members, m)
}

// The sequencer and member objects plug straight into the kernel as
// handlers via rpc.Server.
var _ kernel.Handler = (*rpc.Server)(nil)
