// Package group implements process-group communication: membership plus
// sequencer-based totally-ordered broadcast. One context runs the
// Sequencer; any number of Members join it. Every broadcast is assigned a
// sequence number by the sequencer and delivered to all members in
// sequence order, regardless of network reordering — the delivery
// machinery buffers gaps. The replication layer (internal/replica) builds
// state-machine replication directly on this.
//
// The sequencer role is recoverable: each sequencer incarnation carries an
// epoch number stamped on every delivery, and a successor reassumes the
// role with NewSequencer(WithEpoch(old+1), WithStartSeq(seq)). Members
// remember the epoch they joined under and fence deliveries from older
// epochs (the deposed sequencer sees ErrFenced and must not acknowledge
// the broadcast to its caller), while deliveries from newer epochs are
// refused as ordinary errors until the member has resynchronized — so an
// epoch change forces every member through an explicit rejoin, which is
// where the replica layer runs state transfer.
package group

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/rpc"
	"repro/internal/wire"
)

// Protocol kinds. They are exported so a service may implement the
// sequencer's join side itself (internal/replica's primary does: its
// replicated proxies join it as ordinary group members).
const (
	// KindJoin asks to join the group; the reply is EncodeJoinReply data.
	KindJoin = wire.KindCustom + 30
	// KindLeave departs the group.
	KindLeave = wire.KindCustom + 31
	// KindBcast asks the sequencer to order and deliver a payload.
	KindBcast = wire.KindCustom + 32
	// KindDeliver carries one ordered payload to a member.
	KindDeliver = wire.KindCustom + 33
)

// Errors returned by the group layer.
var (
	// ErrNotMember reports an operation before Join or after Leave.
	ErrNotMember = errors.New("group: not a member")
	// ErrFenced reports a broadcast refused because a member has seen a
	// newer sequencer epoch: this sequencer was deposed. The broadcast
	// must not be acknowledged to its caller.
	ErrFenced = errors.New("group: fenced: sequencer epoch is stale")
)

// defaultDeliverTimeout bounds one member's acknowledgement of a delivery
// unless WithDeliverTimeout overrides it.
const defaultDeliverTimeout = 5 * time.Second

// SequencerOption configures a Sequencer.
type SequencerOption func(*Sequencer)

// WithDeliverTimeout overrides how long the sequencer waits for one
// member to acknowledge a delivery before suspecting it dead (default 5s;
// tests shrink it to exercise eviction quickly).
func WithDeliverTimeout(d time.Duration) SequencerOption {
	return func(s *Sequencer) {
		if d > 0 {
			s.deliverTimeout = d
		}
	}
}

// WithOnJoin installs a callback invoked (under the sequencer lock)
// whenever a member joins; its return value is handed to the joiner as
// bootstrap state (the replica layer ships a state snapshot this way). The
// uint64 is the sequence number the snapshot corresponds to.
func WithOnJoin(fn func(member wire.ObjAddr) (uint64, []byte, error)) SequencerOption {
	return func(s *Sequencer) { s.onJoin = fn }
}

// WithOnEvict installs a callback invoked (under no locks) whenever the
// sequencer drops a member for failing to acknowledge a delivery. The
// replica layer uses it to announce the eviction to surviving members.
func WithOnEvict(fn func(member wire.ObjAddr)) SequencerOption {
	return func(s *Sequencer) { s.onEvict = fn }
}

// WithEpoch sets the sequencer's epoch. A brand-new group starts at epoch
// 1 (the default); a successor taking over a group whose previous
// sequencer died must start at a strictly higher epoch than its
// predecessor so the predecessor's in-flight deliveries are fenced.
func WithEpoch(epoch uint64) SequencerOption {
	return func(s *Sequencer) {
		if epoch > 0 {
			s.epoch = epoch
		}
	}
}

// WithStartSeq sets the last-assigned sequence number, so a reassumed
// sequencer continues the group's single sequence instead of restarting
// from zero (sequence numbers are global across epochs).
func WithStartSeq(seq uint64) SequencerOption {
	return func(s *Sequencer) { s.seq = seq }
}

// memberState is the sequencer's per-member bookkeeping.
type memberState struct {
	// acked is the highest sequence number the member has acknowledged.
	acked uint64
}

// Sequencer orders broadcasts for one group. Register its Handler in a
// kernel context and hand out its address.
type Sequencer struct {
	rt             *core.Runtime
	onJoin         func(wire.ObjAddr) (uint64, []byte, error)
	onEvict        func(wire.ObjAddr)
	deliverTimeout time.Duration
	epoch          uint64

	mu      sync.Mutex
	seq     uint64
	members map[wire.ObjAddr]*memberState

	srv *rpc.Server
	id  wire.ObjectID
}

// NewSequencer creates a sequencer and registers its control object in
// rt's context.
func NewSequencer(rt *core.Runtime, opts ...SequencerOption) *Sequencer {
	s := &Sequencer{
		rt:             rt,
		members:        make(map[wire.ObjAddr]*memberState),
		deliverTimeout: defaultDeliverTimeout,
		epoch:          1,
	}
	for _, o := range opts {
		o(s)
	}
	s.srv = rpc.NewServer(rpc.HandlerFunc(s.handle))
	s.id = rt.Kernel().Register(s.srv)
	return s
}

// Addr is the sequencer's control address, which members join.
func (s *Sequencer) Addr() wire.ObjAddr {
	return wire.ObjAddr{Addr: s.rt.Addr(), Object: s.id}
}

// Members reports the current membership size.
func (s *Sequencer) Members() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.members)
}

// Seq reports the last assigned sequence number.
func (s *Sequencer) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Epoch reports the sequencer's epoch (fixed for its lifetime).
func (s *Sequencer) Epoch() uint64 {
	return s.epoch
}

// MemberSeqs reports, per member, the highest sequence number it has
// acknowledged — the group's replication lag at a glance.
func (s *Sequencer) MemberSeqs() map[wire.ObjAddr]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[wire.ObjAddr]uint64, len(s.members))
	for m, st := range s.members {
		out[m] = st.acked
	}
	return out
}

func (s *Sequencer) handle(req *rpc.Request) (wire.Kind, []byte, []byte) {
	switch req.Kind {
	case KindJoin:
		member, _, err := wire.DecodeObjAddr(req.Frame.Payload)
		if err != nil {
			return 0, nil, core.EncodeInvokeError("join", err)
		}
		var bootSeq uint64
		var boot []byte
		s.mu.Lock()
		if s.onJoin == nil {
			bootSeq = s.seq
			s.members[member] = &memberState{acked: bootSeq}
			s.mu.Unlock()
		} else {
			// Hold the lock across the snapshot so no broadcast can slip
			// between the snapshot's sequence point and membership.
			var err error
			bootSeq, boot, err = s.onJoin(member)
			if err != nil {
				s.mu.Unlock()
				return 0, nil, core.EncodeInvokeError("join", err)
			}
			s.members[member] = &memberState{acked: bootSeq}
			s.mu.Unlock()
		}
		reply, err := EncodeJoinReply(s.epoch, bootSeq, boot, nil)
		if err != nil {
			return 0, nil, core.EncodeInvokeError("join", err)
		}
		return KindJoin, reply, nil
	case KindLeave:
		member, _, err := wire.DecodeObjAddr(req.Frame.Payload)
		if err != nil {
			return 0, nil, core.EncodeInvokeError("leave", err)
		}
		s.mu.Lock()
		delete(s.members, member)
		s.mu.Unlock()
		return KindLeave, nil, nil
	case KindBcast:
		seq, err := s.Broadcast(context.Background(), req.Frame.Payload)
		if err != nil {
			if errors.Is(err, ErrFenced) {
				err = core.Errorf(core.CodeFenced, "bcast", "%s", err)
			}
			return 0, nil, core.EncodeInvokeError("bcast", err)
		}
		return KindBcast, wire.AppendUvarint(nil, seq), nil
	default:
		return 0, nil, core.EncodeInvokeError("", core.Errorf(core.CodeInternal, "", "group: unexpected kind %v", req.Kind))
	}
}

// Reserve assigns the next sequence number without delivering anything.
// The caller is expected to make the payload durable (write-ahead log)
// and then fan it out with Deliver; Broadcast composes the two for
// callers without a durability step.
func (s *Sequencer) Reserve() (epoch, seq uint64) {
	s.mu.Lock()
	s.seq++
	seq = s.seq
	s.mu.Unlock()
	return s.epoch, seq
}

// Broadcast assigns the next sequence number to payload and delivers it to
// every member, blocking until all reachable members acknowledge. Members
// that fail to acknowledge within the delivery timeout are dropped from
// the group (fail-stop suspicion).
func (s *Sequencer) Broadcast(ctx context.Context, payload []byte) (uint64, error) {
	epoch, seq := s.Reserve()
	if err := s.Deliver(ctx, epoch, seq, payload); err != nil {
		return 0, err
	}
	return seq, nil
}

// Deliver fans a reserved (epoch, seq, payload) out to every member,
// blocking until all reachable members acknowledge. Members that fail to
// acknowledge within the delivery timeout are dropped from the group
// (fail-stop suspicion) and reported to the WithOnEvict callback.
//
// If any member fences the delivery — it has seen a newer epoch, meaning
// this sequencer was deposed — Deliver returns ErrFenced, evicts nobody
// (the deposed sequencer's suspicions carry no authority), and the caller
// must not acknowledge the operation to its client.
func (s *Sequencer) Deliver(ctx context.Context, epoch, seq uint64, payload []byte) error {
	s.mu.Lock()
	targets := make([]wire.ObjAddr, 0, len(s.members))
	for m := range s.members {
		targets = append(targets, m)
	}
	s.mu.Unlock()

	msg, err := deliverMessage(epoch, seq, payload)
	if err != nil {
		return fmt.Errorf("group: encode deliver: %w", err)
	}
	// Deliveries are the mesh's own traffic: a member whose admission
	// controller shed them under user load would stall the group and get
	// itself evicted. The priority header exempts them from shedding.
	msg = append(wire.AppendPriorityHeader(make([]byte, 0, 2+len(msg)), wire.PriorityHigh), msg...)
	var wg sync.WaitGroup
	var failedMu sync.Mutex
	var failed []wire.ObjAddr
	var fenced bool
	for _, m := range targets {
		wg.Add(1)
		go func(m wire.ObjAddr) {
			defer wg.Done()
			dctx, cancel := context.WithTimeout(ctx, s.deliverTimeout)
			defer cancel()
			if _, err := s.rt.Client().Call(dctx, m, KindDeliver, msg); err != nil {
				failedMu.Lock()
				if isFenced(err) {
					fenced = true
				} else {
					failed = append(failed, m)
				}
				failedMu.Unlock()
				return
			}
			s.mu.Lock()
			if st, ok := s.members[m]; ok && seq > st.acked {
				st.acked = seq
			}
			s.mu.Unlock()
		}(m)
	}
	wg.Wait()
	if fenced {
		return ErrFenced
	}
	if len(failed) > 0 {
		s.mu.Lock()
		for _, m := range failed {
			delete(s.members, m)
		}
		s.mu.Unlock()
		if s.onEvict != nil {
			for _, m := range failed {
				s.onEvict(m)
			}
		}
	}
	return nil
}

// isFenced reports whether a delivery error is a member's epoch fence.
func isFenced(err error) bool {
	var ie *core.InvokeError
	return errors.As(core.RemoteToInvokeError("deliver", err), &ie) && ie.Code == core.CodeFenced
}

// MemberOption configures a Member.
type MemberOption func(*Member)

// WithRequestHandler installs a handler for non-KindDeliver requests
// arriving at the member's delivery object. The replica layer serves
// repair-protocol queries (who is the primary?) on the member object this
// way, so the membership view doubles as a directory of peers.
func WithRequestHandler(fn func(req *rpc.Request) (wire.Kind, []byte, []byte)) MemberOption {
	return func(m *Member) { m.reqHandler = fn }
}

// Member is one group participant: it registers a delivery object, joins
// the sequencer, and hands ordered payloads to the deliver callback.
// The callback runs on the delivery path, one payload at a time, in
// sequence order.
type Member struct {
	rt         *core.Runtime
	seqAddr    wire.ObjAddr
	deliver    func(seq uint64, payload []byte)
	reqHandler func(req *rpc.Request) (wire.Kind, []byte, []byte)

	// deliverMu serializes the drain-and-callback path so payloads reach
	// the callback strictly in sequence order even when deliveries race.
	deliverMu sync.Mutex

	mu      sync.Mutex
	epoch   uint64
	next    uint64 // next sequence number to deliver
	pending map[uint64][]byte
	paused  bool
	joined  bool
	id      wire.ObjectID

	delivered uint64
	buffered  uint64
	fenced    uint64
}

// JoinInfo is what the sequencer (or a service fronting one) handed a
// joining member: the epoch it joined under, the sequence point of the
// bootstrap state, the bootstrap blob itself, and a service-defined extra
// blob (the replica layer ships the membership view there).
type JoinInfo struct {
	Epoch   uint64
	BootSeq uint64
	Boot    []byte
	Extra   []byte
}

// Join creates a member, registers its delivery object, and joins the
// group at seqAddr. The returned JoinInfo carries the bootstrap state the
// sequencer's WithOnJoin callback produced (nil without one). deliver
// receives every broadcast ordered by sequence number, starting after the
// bootstrap point.
func Join(ctx context.Context, rt *core.Runtime, seqAddr wire.ObjAddr, deliver func(seq uint64, payload []byte), opts ...MemberOption) (*Member, JoinInfo, error) {
	m := &Member{
		rt:      rt,
		seqAddr: seqAddr,
		deliver: deliver,
		pending: make(map[uint64][]byte),
	}
	for _, o := range opts {
		o(m)
	}
	srv := rpc.NewServer(rpc.HandlerFunc(m.handleDeliver))
	m.id = rt.Kernel().Register(srv)
	self := wire.ObjAddr{Addr: rt.Addr(), Object: m.id}

	reply, err := rt.Client().Call(ctx, seqAddr, KindJoin, wire.AppendObjAddr(nil, self))
	if err != nil {
		rt.Kernel().Unregister(m.id)
		return nil, JoinInfo{}, fmt.Errorf("group: join: %w", err)
	}
	info, err := DecodeJoinReply(reply)
	if err != nil {
		rt.Kernel().Unregister(m.id)
		return nil, JoinInfo{}, err
	}
	m.mu.Lock()
	m.epoch = info.Epoch
	m.next = info.BootSeq + 1
	m.joined = true
	m.mu.Unlock()
	return m, info, nil
}

// Self is the member's delivery address (its group identity).
func (m *Member) Self() wire.ObjAddr {
	return wire.ObjAddr{Addr: m.rt.Addr(), Object: m.id}
}

// Epoch reports the sequencer epoch the member currently accepts.
func (m *Member) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// Pause prepares the member for out-of-band state transfer under epoch:
// deliveries from older epochs are fenced, and deliveries at epoch are
// acknowledged and buffered without being applied, so nothing touches the
// local state while it is being replaced. ResumeAt ends the pause.
func (m *Member) Pause(epoch uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if epoch > m.epoch {
		m.epoch = epoch
	}
	m.paused = true
}

// ResumeAt completes out-of-band state transfer: fn (if non-nil) runs
// under the delivery lock — that is where the caller restores a snapshot
// or applies a log suffix without racing a live delivery — and then the
// member accepts epoch and expects the sequence after afterSeq next.
// With rewind the position is set exactly (full-snapshot transfer: the
// restored state IS the state at afterSeq, even if this member had
// applied a divergent tail beyond it); without it the position only moves
// forward (log-suffix catch-up racing live deliveries that may already
// have advanced it). Buffered deliveries at or before the new position
// are discarded; later ones are drained in order.
func (m *Member) ResumeAt(epoch, afterSeq uint64, rewind bool, fn func()) {
	m.deliverMu.Lock()
	defer m.deliverMu.Unlock()
	if fn != nil {
		fn()
	}
	m.mu.Lock()
	if epoch > m.epoch {
		m.epoch = epoch
	}
	if rewind || afterSeq+1 > m.next {
		m.next = afterSeq + 1
	}
	m.paused = false
	for seq := range m.pending {
		if seq < m.next {
			delete(m.pending, seq)
		}
	}
	var ready [][2]any
	for {
		p, ok := m.pending[m.next]
		if !ok {
			break
		}
		delete(m.pending, m.next)
		ready = append(ready, [2]any{m.next, p})
		m.next++
		m.delivered++
	}
	m.mu.Unlock()
	for _, r := range ready {
		m.deliver(r[0].(uint64), r[1].([]byte))
	}
}

// handleDeliver processes one delivery, reordering as needed. Other
// kinds are offered to the WithRequestHandler hook.
func (m *Member) handleDeliver(req *rpc.Request) (wire.Kind, []byte, []byte) {
	if req.Kind != KindDeliver {
		if m.reqHandler != nil {
			return m.reqHandler(req)
		}
		return 0, nil, core.EncodeInvokeError("", core.Errorf(core.CodeInternal, "", "group: unexpected kind %v", req.Kind))
	}
	_, body := wire.SplitPriorityHeader(req.Frame.Payload)
	vals, err := codec.DecodeArgs(body)
	if err != nil || len(vals) != 3 {
		return 0, nil, core.EncodeInvokeError("deliver", core.Errorf(core.CodeBadArgs, "deliver", "malformed delivery"))
	}
	epoch, _ := vals[0].(uint64)
	seq, _ := vals[1].(uint64)
	payload, _ := vals[2].([]byte)

	m.deliverMu.Lock()
	defer m.deliverMu.Unlock()

	m.mu.Lock()
	switch {
	case epoch < m.epoch:
		// A deposed sequencer is still delivering: fence it. The distinct
		// code travels back so its Deliver aborts instead of evicting.
		m.fenced++
		cur := m.epoch
		m.mu.Unlock()
		return 0, nil, core.EncodeInvokeError("deliver",
			core.Errorf(core.CodeFenced, "deliver", "group: delivery epoch %d fenced by epoch %d", epoch, cur))
	case epoch > m.epoch:
		// A successor sequencer we have not resynchronized with yet. The
		// stream may have diverged at the epoch boundary, so refuse (an
		// ordinary refusal — we are the stale party, not the sender) until
		// the service layer transfers state and calls ResumeAt.
		cur := m.epoch
		m.mu.Unlock()
		return 0, nil, core.EncodeInvokeError("deliver",
			core.Errorf(core.CodeUnavailable, "deliver", "group: member at epoch %d behind delivery epoch %d", cur, epoch))
	}
	if m.paused {
		// Mid state-transfer: acknowledge and buffer, apply nothing. The
		// transfer's ResumeAt decides what survives — next may even move
		// backwards past seqs this member applied on a divergent tail.
		m.pending[seq] = payload
		m.mu.Unlock()
		return KindDeliver, nil, nil
	}
	if seq < m.next {
		// Duplicate of something already delivered: ack and drop.
		m.mu.Unlock()
		return KindDeliver, nil, nil
	}
	m.pending[seq] = payload
	if seq != m.next {
		m.buffered++
	}
	// Drain everything now in order.
	var ready [][2]any
	for {
		p, ok := m.pending[m.next]
		if !ok {
			break
		}
		delete(m.pending, m.next)
		ready = append(ready, [2]any{m.next, p})
		m.next++
		m.delivered++
	}
	m.mu.Unlock()

	for _, r := range ready {
		m.deliver(r[0].(uint64), r[1].([]byte))
	}
	return KindDeliver, nil, nil
}

// Broadcast sends payload through the sequencer, returning its sequence
// number once every member (including this one) has acknowledged delivery.
func (m *Member) Broadcast(ctx context.Context, payload []byte) (uint64, error) {
	m.mu.Lock()
	joined := m.joined
	m.mu.Unlock()
	if !joined {
		return 0, ErrNotMember
	}
	reply, err := m.rt.Client().Call(ctx, m.seqAddr, KindBcast, payload)
	if err != nil {
		return 0, err
	}
	seq, _, err := wire.Uvarint(reply)
	if err != nil {
		return 0, fmt.Errorf("group: malformed bcast reply: %w", err)
	}
	return seq, nil
}

// Stats reports (delivered in order, arrived out of order and buffered,
// deliveries fenced for carrying a stale epoch).
func (m *Member) Stats() (delivered, buffered, fenced uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.delivered, m.buffered, m.fenced
}

// Leave departs the group and releases the delivery object.
func (m *Member) Leave(ctx context.Context) error {
	m.mu.Lock()
	if !m.joined {
		m.mu.Unlock()
		return ErrNotMember
	}
	m.joined = false
	m.mu.Unlock()
	_, err := m.rt.Client().Call(ctx, m.seqAddr, KindLeave, wire.AppendObjAddr(nil, m.Self()))
	m.rt.Kernel().Unregister(m.id)
	return err
}

// deliverMessage encodes one ordered delivery: [epoch, seq, payload].
func deliverMessage(epoch, seq uint64, payload []byte) ([]byte, error) {
	return codec.Append(nil, []any{epoch, seq, payload})
}

// EncodeJoinReply builds the reply a join handler sends to a joining
// Member: the sequencer epoch, the sequence number its bootstrap state
// corresponds to, the bootstrap blob, and a service-defined extra blob.
// Services that front a sequencer (replica's primary) answer KindJoin
// frames with this.
func EncodeJoinReply(epoch, bootSeq uint64, boot, extra []byte) ([]byte, error) {
	return codec.Append(nil, []any{epoch, bootSeq, boot, extra})
}

// DecodeJoinReply parses an EncodeJoinReply payload.
func DecodeJoinReply(reply []byte) (JoinInfo, error) {
	vals, err := codec.DecodeArgs(reply)
	if err != nil || len(vals) != 4 {
		return JoinInfo{}, fmt.Errorf("group: malformed join reply")
	}
	epoch, _ := vals[0].(uint64)
	bootSeq, _ := vals[1].(uint64)
	boot, _ := vals[2].([]byte)
	extra, _ := vals[3].([]byte)
	return JoinInfo{Epoch: epoch, BootSeq: bootSeq, Boot: boot, Extra: extra}, nil
}

// AddMember inserts a member directly (used by services that handle the
// join protocol themselves and coordinate their own snapshot/sequence
// atomicity before calling this). acked is the sequence point the member
// is known to be caught up to.
func (s *Sequencer) AddMember(m wire.ObjAddr, acked uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.members[m] = &memberState{acked: acked}
}

// HasMember reports whether m is currently in the group.
func (s *Sequencer) HasMember(m wire.ObjAddr) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.members[m]
	return ok
}

// RemoveMember deletes a member directly.
func (s *Sequencer) RemoveMember(m wire.ObjAddr) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.members, m)
}

// The sequencer and member objects plug straight into the kernel as
// handlers via rpc.Server.
var _ kernel.Handler = (*rpc.Server)(nil)
