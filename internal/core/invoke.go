package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/codec"
	"repro/internal/kernel"
	"repro/internal/obs"
)

// Invocation payload conventions. A request payload is the codec list
// [cap uint64, method string, arg0, arg1, …], optionally preceded by
// headers (each introduced by a magic byte outside the codec tag space):
// a deadline header carrying the client's remaining budget (deadline.go)
// and a trace header carrying the caller's span (internal/obs), in either
// order; a reply payload is the codec list [result0, result1, …]; an
// error payload is the codec struct {Name:"InvokeError", Fields: Code,
// Method, Msg}. The leading cap is the capability token from the caller's
// reference (zero when the export is unprotected); servers of protected
// exports reject mismatches. These conventions are shared by every proxy
// kind in the repository, but nothing forces a service-private protocol
// to use them — smart proxies may exchange whatever payloads they like
// under custom kinds. Every header is optional in both directions:
// headerless payloads from older peers decode unchanged, and decoders
// that predate a header never see one (each feature only activates
// against header-aware servers).

// EncodeRequest builds a request payload presenting the given capability
// token. Arguments must already be in wire shape (Runtime.encodeOutbound
// lowers proxies and services to Refs before calling this).
func EncodeRequest(cap uint64, method string, args []any) ([]byte, error) {
	return AppendRequest(nil, cap, method, args)
}

// AppendRequest is EncodeRequest appending onto dst (which may be a
// pooled buffer): the [cap, method, args...] list is encoded element by
// element, with no intermediate vector.
func AppendRequest(dst []byte, cap uint64, method string, args []any) ([]byte, error) {
	dst = codec.AppendListHeader(dst, len(args)+2)
	dst, err := codec.AppendElem(dst, cap)
	if err == nil {
		dst, err = codec.AppendElem(dst, method)
	}
	for _, a := range args {
		if err != nil {
			break
		}
		dst, err = codec.AppendElem(dst, a)
	}
	if err != nil {
		return nil, fmt.Errorf("core: encode request %q: %w", method, err)
	}
	return dst, nil
}

// EncodeRequestTraced is EncodeRequest with a trace header prefixed when
// sc carries a live trace. Pass a zero sc to get a plain request payload.
func EncodeRequestTraced(cap uint64, method string, args []any, sc obs.SpanContext) ([]byte, error) {
	body, err := EncodeRequest(cap, method, args)
	if err != nil || sc.Trace == 0 {
		return body, err
	}
	return append(obs.AppendSpanHeader(nil, sc), body...), nil
}

// EncodeRequestCtx is EncodeRequest with every header the ctx implies
// prefixed: the remaining deadline budget and the trace span. It is what
// header-aware proxies use on their send path.
func EncodeRequestCtx(ctx context.Context, cap uint64, method string, args []any) ([]byte, error) {
	return AppendRequestCtx(nil, ctx, cap, method, args)
}

// AppendRequestCtx is EncodeRequestCtx appending onto dst: headers
// first, then the request body, in one buffer.
func AppendRequestCtx(dst []byte, ctx context.Context, cap uint64, method string, args []any) ([]byte, error) {
	dst = AppendCtxHeaders(dst, ctx)
	return AppendRequest(dst, cap, method, args)
}

// DecodeRequest parses a request payload with the given decoder (whose
// RefHook installs proxies for imported references). Leading headers, if
// present, are stripped and ignored — callers that propagate traces or
// deadlines use DecodeRequestTraced / DecodeRequestFull.
func DecodeRequest(d *codec.Decoder, payload []byte) (cap uint64, method string, args []any, err error) {
	_, cap, method, args, err = DecodeRequestTraced(d, payload)
	return cap, method, args, err
}

// DecodeRequestTraced parses a request payload, returning the span
// context carried in its trace header (zero for headerless payloads). Any
// deadline header is stripped and ignored.
func DecodeRequestTraced(d *codec.Decoder, payload []byte) (sc obs.SpanContext, cap uint64, method string, args []any, err error) {
	sc, _, cap, method, args, err = DecodeRequestFull(d, payload)
	return sc, cap, method, args, err
}

// DecodeRequestFull parses a request payload, returning everything its
// headers carried: the span context (zero when untraced) and the client's
// remaining deadline budget (zero when absent). Servers pass the budget
// to ApplyBudget to cancel abandoned work.
func DecodeRequestFull(d *codec.Decoder, payload []byte) (sc obs.SpanContext, budget time.Duration, cap uint64, method string, args []any, err error) {
	sc, budget, payload = SplitHeaders(payload)
	vec, err := d.DecodeArgs(payload)
	if err != nil {
		return sc, budget, 0, "", nil, fmt.Errorf("core: decode request: %w", err)
	}
	if len(vec) < 2 {
		return sc, budget, 0, "", nil, errors.New("core: short request vector")
	}
	c, ok := vec[0].(uint64)
	if !ok {
		return sc, budget, 0, "", nil, fmt.Errorf("core: request cap is %T, want uint64", vec[0])
	}
	m, ok := vec[1].(string)
	if !ok {
		return sc, budget, 0, "", nil, fmt.Errorf("core: request method is %T, want string", vec[1])
	}
	return sc, budget, c, m, vec[2:], nil
}

// EncodeResults builds a reply payload.
func EncodeResults(results []any) ([]byte, error) {
	buf, err := codec.EncodeArgs(results...)
	if err != nil {
		return nil, fmt.Errorf("core: encode results: %w", err)
	}
	return buf, nil
}

// DecodeResults parses a reply payload with the given decoder.
func DecodeResults(d *codec.Decoder, payload []byte) ([]any, error) {
	res, err := d.DecodeArgs(payload)
	if err != nil {
		return nil, fmt.Errorf("core: decode results: %w", err)
	}
	return res, nil
}

// EncodeInvokeError builds an error payload from any error. Non-InvokeError
// values are wrapped as CodeApp.
func EncodeInvokeError(method string, err error) []byte {
	ie := AsInvokeError(method, err)
	s := codec.Struct{Name: "InvokeError", Fields: []codec.Field{
		{Name: "Code", Value: int64(ie.Code)},
		{Name: "Method", Value: ie.Method},
		{Name: "Msg", Value: ie.Msg},
	}}
	buf, encErr := codec.Append(nil, s)
	if encErr != nil {
		// Unreachable for this fixed shape, but never drop the error.
		return []byte(ie.Error())
	}
	return buf
}

// AsInvokeError coerces err into an *InvokeError, wrapping foreign errors
// as application errors for the given method.
func AsInvokeError(method string, err error) *InvokeError {
	var ie *InvokeError
	if errors.As(err, &ie) {
		return ie
	}
	return &InvokeError{Code: CodeApp, Method: method, Msg: err.Error()}
}

// DecodeInvokeError parses an error payload back into an *InvokeError. A
// payload that is not a well-formed InvokeError struct (e.g. a kernel-level
// error string) is surfaced as CodeInternal with the raw text.
func DecodeInvokeError(payload []byte) *InvokeError {
	v, n, err := codec.Decode(payload)
	if err != nil || n != len(payload) {
		return &InvokeError{Code: CodeInternal, Msg: string(payload)}
	}
	s, ok := v.(*codec.Struct)
	if !ok || s.Name != "InvokeError" {
		return &InvokeError{Code: CodeInternal, Msg: string(payload)}
	}
	out := &InvokeError{Code: CodeInternal}
	if c, ok := s.Get("Code"); ok {
		if ci, ok := c.(int64); ok {
			out.Code = Code(ci)
		}
	}
	if m, ok := s.Get("Method"); ok {
		out.Method, _ = m.(string)
	}
	if m, ok := s.Get("Msg"); ok {
		out.Msg, _ = m.(string)
	}
	return out
}

// RemoteToInvokeError converts a transport-level error from a call into
// the error the proxy returns to its client: overload pushback becomes
// CodeOverload (the payload is a retry-after hint, not an InvokeError
// struct), other remote KindError payloads are decoded; everything else
// is wrapped as CodeUnavailable.
func RemoteToInvokeError(method string, err error) error {
	var re *kernel.RemoteError
	if errors.As(err, &re) {
		if re.Pushback {
			return &InvokeError{
				Code:   CodeOverload,
				Method: method,
				Msg:    fmt.Sprintf("%s shed the request; retry after %s", re.From, re.RetryAfter),
			}
		}
		ie := DecodeInvokeError(re.Payload)
		if ie.Method == "" {
			ie.Method = method
		}
		return ie
	}
	return &InvokeError{Code: CodeUnavailable, Method: method, Msg: err.Error()}
}

// IsOverload reports whether err is an overload shed — either the raw
// transport form (a pushback RemoteError) or the decoded proxy form (an
// InvokeError with CodeOverload). Degradation policies key on this:
// cache proxies serve stale within their staleness window, shard
// scatter-gather surfaces the key without re-routing (the owner is
// right, just saturated).
func IsOverload(err error) bool {
	var re *kernel.RemoteError
	if errors.As(err, &re) {
		return re.Pushback
	}
	var ie *InvokeError
	return errors.As(err, &ie) && ie.Code == CodeOverload
}

// ForwardPayload is the payload of a KindForward response: the new
// location of a migrated object, encoded as a bare Ref.
func ForwardPayload(newRef codec.Ref) []byte {
	return codec.AppendRef(nil, newRef)
}

// DecodeForward parses a KindForward payload.
func DecodeForward(payload []byte) (codec.Ref, error) {
	r, n, err := codec.DecodeRef(payload)
	if err != nil {
		return codec.Ref{}, fmt.Errorf("core: decode forward: %w", err)
	}
	if n != len(payload) {
		return codec.Ref{}, fmt.Errorf("core: %d trailing bytes in forward", len(payload)-n)
	}
	return r, nil
}
