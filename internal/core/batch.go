package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/wire"
)

// KindBatch is the frame kind carrying a batched invocation vector: the
// payload is a codec list of encoded requests, executed in order by the
// receiving server object.
const KindBatch = wire.KindCustom + 4

// ErrNotBatchable reports a Call through a batching proxy for a method the
// factory did not declare one-way.
var ErrNotBatchable = errors.New("core: method is not one-way")

// BatchOption configures a BatchFactory.
type BatchOption func(*BatchFactory)

// WithBatchSize flushes automatically after n queued invocations
// (default 16).
func WithBatchSize(n int) BatchOption {
	return func(f *BatchFactory) {
		if n > 0 {
			f.maxBatch = n
		}
	}
}

// WithBatchInterval flushes at least this often while invocations are
// queued (default 10 ms; zero disables the timer — explicit Flush or the
// size trigger only).
func WithBatchInterval(d time.Duration) BatchOption {
	return func(f *BatchFactory) { f.interval = d }
}

// BatchFactory builds batching proxies: invocations of the declared
// one-way methods are queued locally and shipped as a single frame,
// amortizing the wire cost across the batch; all other methods flush the
// queue (preserving program order) and then behave like a stub. The
// classic use is a log or metrics object whose append cost must not be a
// round trip. Purely client-side — batches ride a custom kind the
// standard server object understands — so NopExport supplies its Export
// half.
type BatchFactory struct {
	NopExport
	oneWay   map[string]bool
	maxBatch int
	interval time.Duration
}

var _ ProxyFactory = (*BatchFactory)(nil)

// NewBatchFactory declares which methods may be batched (their results
// are discarded; errors surface only as a failed flush).
func NewBatchFactory(oneWayMethods []string, opts ...BatchOption) *BatchFactory {
	f := &BatchFactory{
		oneWay:   make(map[string]bool, len(oneWayMethods)),
		maxBatch: 16,
		interval: 10 * time.Millisecond,
	}
	for _, m := range oneWayMethods {
		f.oneWay[m] = true
	}
	for _, o := range opts {
		o(f)
	}
	return f
}

// New implements ProxyFactory.
func (f *BatchFactory) New(rt *Runtime, ref codec.Ref) (Proxy, error) {
	p := &BatchProxy{
		rt:       rt,
		stub:     NewStub(rt, ref),
		oneWay:   f.oneWay,
		maxBatch: f.maxBatch,
		interval: f.interval,
	}
	p.bgCtx, p.bgCancel = context.WithCancel(context.Background())
	return p, nil
}

// BatchProxy queues one-way invocations and flushes them in one frame.
type BatchProxy struct {
	rt       *Runtime
	stub     *Stub
	oneWay   map[string]bool
	maxBatch int
	interval time.Duration

	// bgCtx parents every interval-triggered background flush; Close
	// cancels it so a flush stuck on a dead server unblocks immediately,
	// and bg counts armed timers so Close can wait for the flusher
	// goroutine to actually exit rather than orphaning it.
	bgCtx    context.Context
	bgCancel context.CancelFunc
	bg       sync.WaitGroup

	mu      sync.Mutex
	queue   [][]byte
	timer   *time.Timer
	closed  bool
	flushes uint64
	queued  uint64
}

// Invoke implements Proxy. One-way methods return immediately with nil
// results; everything else flushes then forwards synchronously.
func (p *BatchProxy) Invoke(ctx context.Context, method string, args ...any) ([]any, error) {
	if !p.oneWay[method] {
		if err := p.Flush(ctx); err != nil {
			return nil, err
		}
		return p.stub.Invoke(ctx, method, args...)
	}
	lowered, err := p.rt.LowerArgs(args)
	if err != nil {
		return nil, &InvokeError{Code: CodeInternal, Method: method, Msg: err.Error()}
	}
	encoded, err := EncodeRequest(p.stub.Ref().Cap, method, lowered)
	if err != nil {
		return nil, &InvokeError{Code: CodeInternal, Method: method, Msg: err.Error()}
	}

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrProxyClosed
	}
	p.queue = append(p.queue, encoded)
	p.queued++
	full := len(p.queue) >= p.maxBatch
	if !full && p.timer == nil && p.interval > 0 {
		p.bg.Add(1)
		p.timer = time.AfterFunc(p.interval, func() {
			defer p.bg.Done()
			// Background flush: best effort, bounded by the timeout and
			// cut short by Close via bgCtx.
			ctx, cancel := context.WithTimeout(p.bgCtx, 10*time.Second)
			defer cancel()
			_ = p.Flush(ctx)
		})
	}
	p.mu.Unlock()

	if full {
		return nil, p.Flush(ctx)
	}
	return nil, nil
}

// Flush ships every queued invocation in one frame and waits for the
// server to acknowledge executing them all.
func (p *BatchProxy) Flush(ctx context.Context) error {
	p.mu.Lock()
	p.disarmTimer()
	batch := p.queue
	p.queue = nil
	if len(batch) > 0 {
		p.flushes++
	}
	p.mu.Unlock()
	if len(batch) == 0 {
		return nil
	}

	vec := make([]any, len(batch))
	for i, b := range batch {
		vec[i] = b
	}
	payload, err := codec.Append(nil, vec)
	if err != nil {
		return &InvokeError{Code: CodeInternal, Msg: err.Error()}
	}
	if _, err := p.rt.Client().Call(ctx, p.stub.Ref().Target, KindBatch, payload); err != nil {
		return RemoteToInvokeError("batch", err)
	}
	return nil
}

// Pending reports queued-but-unflushed invocations (tests/metrics).
func (p *BatchProxy) Pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// Stats reports (invocations queued, flush frames sent).
func (p *BatchProxy) Stats() (queued, flushes uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.queued, p.flushes
}

// Ref implements Proxy.
func (p *BatchProxy) Ref() codec.Ref { return p.stub.Ref() }

// disarmTimer stops a pending interval flush. Called with p.mu held. If
// Stop wins the race the timer's function will never run, so its WaitGroup
// slot is released here; if it loses, the function is already running and
// releases the slot itself.
func (p *BatchProxy) disarmTimer() {
	if p.timer == nil {
		return
	}
	if p.timer.Stop() {
		p.bg.Done()
	}
	p.timer = nil
}

// Close flushes what remains and shuts the proxy down. Any in-flight
// interval flush is cancelled and waited for, so no flusher goroutine
// outlives Close.
func (p *BatchProxy) Close() error {
	p.mu.Lock()
	p.closed = true // no new invocations, no new timers
	p.disarmTimer()
	p.mu.Unlock()
	p.bgCancel()
	p.bg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := p.Flush(ctx)
	if cerr := p.stub.Close(); err == nil {
		err = cerr
	}
	return err
}

// handleBatch executes one batch frame against a service: each element of
// the payload vector is a standard encoded request, applied in order.
// serverObject routes KindBatch frames here.
func (so *serverObject) handleBatch(payload []byte) ([]byte, error) {
	vec, err := codec.DecodeArgs(payload)
	if err != nil {
		return nil, fmt.Errorf("core: decode batch: %w", err)
	}
	svc := so.service()
	for i, e := range vec {
		raw, ok := e.([]byte)
		if !ok {
			return nil, fmt.Errorf("core: batch element %d is %T", i, e)
		}
		cap, method, args, err := DecodeRequest(so.rt.decoder(), raw)
		if err != nil {
			return nil, fmt.Errorf("core: batch element %d: %w", i, err)
		}
		if so.cap != 0 && cap != so.cap {
			return nil, &InvokeError{Code: CodeDenied, Method: method, Msg: "capability required"}
		}
		// One-way semantics: results are discarded; an error aborts the
		// rest of the batch and surfaces to the flusher.
		if _, err := svc.Invoke(context.Background(), method, args); err != nil {
			return nil, fmt.Errorf("core: batch element %d (%s): %w", i, method, err)
		}
	}
	return nil, nil
}
