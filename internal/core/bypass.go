package core

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/codec"
)

// bypassProxy is installed when an imported reference turns out to target
// an object in the importing context itself: the invocation degenerates to
// a direct call — no marshalling, no kernel, no network. This is the
// cheapest rung of the invocation-cost ladder (experiment E1) and the
// reason passing references around a distributed system never penalises
// the co-located case.
//
// Location transparency survives migration: each invocation re-checks
// that the object is still exported here; once it has moved away, the
// bypass falls back to a stub, whose first call follows the forwarding
// tombstone and rebinds.
type bypassProxy struct {
	rt     *Runtime
	ref    codec.Ref
	closed atomic.Bool

	// bgCtx is WithCaller(context.Background(), rt.Addr()) built once:
	// callers invoking with a bare background context (the common case on
	// the hot path) reuse it instead of allocating a value context plus a
	// boxed address per call, which is what keeps the bypass at zero
	// allocations per invocation.
	bgCtx context.Context

	mu       sync.Mutex
	fallback *Stub
}

func newBypassProxy(rt *Runtime, ref codec.Ref) Proxy {
	return &bypassProxy{rt: rt, ref: ref, bgCtx: WithCaller(context.Background(), rt.Addr())}
}

// Invoke implements Proxy by calling the service directly while it remains
// co-located, degrading to a forwarding stub after it migrates away.
func (p *bypassProxy) Invoke(ctx context.Context, method string, args ...any) ([]any, error) {
	if p.closed.Load() {
		return nil, ErrProxyClosed
	}
	p.mu.Lock()
	fallback := p.fallback
	p.mu.Unlock()
	if fallback != nil {
		return fallback.Invoke(ctx, method, args...)
	}
	if svc, ok := p.rt.dispatchService(p.ref); ok {
		// The caller address matters to coordination wrappers (a cache
		// coordinator skips invalidating the writer's own context).
		if ctx == context.Background() {
			return svc.Invoke(p.bgCtx, method, args)
		}
		return svc.Invoke(WithCaller(ctx, p.rt.Addr()), method, args)
	}
	// The object left this context (migration or unexport); a stub's
	// forward-following logic takes over from here.
	p.mu.Lock()
	if p.fallback == nil {
		p.fallback = NewStub(p.rt, p.ref)
	}
	fallback = p.fallback
	p.mu.Unlock()
	return fallback.Invoke(ctx, method, args...)
}

// Ref implements Proxy; after a migration it reports the rebound location.
func (p *bypassProxy) Ref() codec.Ref {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fallback != nil {
		return p.fallback.Ref()
	}
	return p.ref
}

// Close implements Proxy.
func (p *bypassProxy) Close() error {
	p.closed.Store(true)
	p.mu.Lock()
	fallback := p.fallback
	p.mu.Unlock()
	if fallback != nil {
		return fallback.Close()
	}
	return nil
}
