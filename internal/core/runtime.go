package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/health"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/overload"
	"repro/internal/rpc"
	"repro/internal/session"
	"repro/internal/wire"
)

// RuntimeOption configures a Runtime.
type RuntimeOption func(*Runtime)

// WithClient substitutes a pre-configured rpc client (retry intervals,
// attempt bounds). By default the runtime builds one with rpc defaults.
func WithClient(c *rpc.Client) RuntimeOption {
	return func(rt *Runtime) { rt.client = c }
}

// WithDefaultFactory sets the factory used for imported types that have no
// registered factory. The default default is the stub factory; pass nil to
// make unregistered imports fail with ErrNoFactory instead.
func WithDefaultFactory(f ProxyFactory) RuntimeOption {
	return func(rt *Runtime) {
		rt.defaultFactory = f
		rt.defaultFactorySet = true
	}
}

// WithObserver shares an observability sink (metrics registry + tracer)
// with this runtime. By default each runtime gets a private observer;
// tests and clusters pass one shared instance so spans from every context
// land in a single ring and reconstruct as one tree.
func WithObserver(o *obs.Observer) RuntimeOption {
	return func(rt *Runtime) {
		if o != nil {
			rt.observer = o
		}
	}
}

// WithBreakerConfig tunes the per-destination circuit breakers guarding
// every call issued through GuardedCall. Defaults: 3 consecutive
// transport failures open a breaker for 1 s.
func WithBreakerConfig(cfg health.BreakerConfig) RuntimeOption {
	return func(rt *Runtime) { rt.breakerCfg = cfg }
}

// WithHealth connects a failure-detection monitor: every GuardedCall
// outcome feeds it as passive evidence, sharpening its verdicts beyond
// what periodic probing alone sees.
func WithHealth(m *health.Monitor) RuntimeOption {
	return func(rt *Runtime) { rt.monitor = m }
}

// Runtime is the proxy machinery for one context: the export table (local
// services reachable from elsewhere), the import table (proxies installed
// here), and the proxy-factory registry that lets each service type choose
// its own proxy implementation.
type Runtime struct {
	ktx    *kernel.Context
	client *rpc.Client

	observer *obs.Observer
	where    string // cached Addr().String(), used in span and metric names
	// runtime-wide invocation counters (per-proxy stats stay on the proxies)
	invokeCalls     *obs.Counter
	invokeForwards  *obs.Counter
	invokeFailovers *obs.Counter
	invokeEjections *obs.Counter
	serveCalls      *obs.Counter
	circuitRejects  *obs.Counter

	breakerCfg health.BreakerConfig
	breakers   *health.BreakerSet
	monitor    *health.Monitor // optional (WithHealth)

	hedgeCfg *HedgeConfig // optional (WithHedging)
	hedge    *hedgeState  // built in NewRuntime when hedgeCfg is set

	sessions *session.Minter // optional (WithSessions)

	defaultFactory    ProxyFactory
	defaultFactorySet bool

	// dec is the runtime's shared ref-installing decoder; Decoder is
	// stateless and safe for concurrent use, so one instance serves every
	// call instead of allocating a decoder (plus hook closure) per call.
	dec *codec.Decoder

	mu        sync.Mutex
	factories map[string]ProxyFactory
	exports   map[wire.ObjectID]*exportRecord
	bySvc     map[any]*exportRecord
	proxies   map[wire.ObjAddr]Proxy
	idem      map[string]map[string]bool // type name → replay-safe methods
}

type exportRecord struct {
	ref    codec.Ref
	svc    Service // the original (unwrapped) service
	server *serverObject
}

// NewRuntime builds the proxy runtime for a kernel context.
func NewRuntime(ktx *kernel.Context, opts ...RuntimeOption) *Runtime {
	rt := &Runtime{
		ktx:       ktx,
		factories: make(map[string]ProxyFactory),
		exports:   make(map[wire.ObjectID]*exportRecord),
		bySvc:     make(map[any]*exportRecord),
		proxies:   make(map[wire.ObjAddr]Proxy),
		idem:      make(map[string]map[string]bool),
	}
	for _, o := range opts {
		o(rt)
	}
	if rt.observer == nil {
		rt.observer = obs.NewObserver()
	}
	rt.where = ktx.Addr().String()
	scope := "core[" + rt.where + "]."
	rt.invokeCalls = rt.observer.Registry.Counter(scope + "invoke.calls")
	rt.invokeForwards = rt.observer.Registry.Counter(scope + "invoke.forwards")
	rt.invokeFailovers = rt.observer.Registry.Counter(scope + "invoke.failovers")
	rt.invokeEjections = rt.observer.Registry.Counter(scope + "invoke.ejections")
	rt.serveCalls = rt.observer.Registry.Counter(scope + "serve.calls")
	rt.circuitRejects = rt.observer.Registry.Counter(scope + "circuit.rejects")
	rt.breakers = health.NewBreakerSet(rt.breakerCfg, rt.observer.Registry, scope)
	if rt.hedgeCfg != nil {
		rt.hedge = &hedgeState{
			tracker:  overload.NewDelayTracker(rt.hedgeCfg.MinDelay, rt.hedgeCfg.MaxDelay),
			launches: rt.observer.Registry.Counter(scope + "hedge.launches"),
			wins:     rt.observer.Registry.Counter(scope + "hedge.wins"),
		}
	}
	if rt.client == nil {
		rt.client = rpc.NewClient(ktx, rpc.WithObserver(rt.observer))
	}
	if !rt.defaultFactorySet {
		rt.defaultFactory = StubFactory{}
	}
	rt.dec = &codec.Decoder{RefHook: func(r codec.Ref) (any, error) {
		p, err := rt.Import(r)
		if err != nil {
			return nil, err
		}
		return p, nil
	}}
	return rt
}

// Addr reports the context address this runtime lives in.
func (rt *Runtime) Addr() wire.Addr { return rt.ktx.Addr() }

// Kernel exposes the underlying kernel context for proxy implementations.
func (rt *Runtime) Kernel() *kernel.Context { return rt.ktx }

// Client exposes the runtime's reliable-call client for proxy
// implementations.
func (rt *Runtime) Client() *rpc.Client { return rt.client }

// Observer exposes the runtime's observability sink (never nil).
func (rt *Runtime) Observer() *obs.Observer { return rt.observer }

// Tracer is shorthand for Observer().Tracer.
func (rt *Runtime) Tracer() *obs.Tracer { return rt.observer.Tracer }

// Where reports this runtime's context address in string form (the
// location tag spans record).
func (rt *Runtime) Where() string { return rt.where }

// InvokeCount reports how many proxy invocations this runtime has served,
// for use as the operation counter of obs.RegisterFastPathMetrics.
func (rt *Runtime) InvokeCount() uint64 { return rt.invokeCalls.Load() }

// Breakers exposes the runtime's per-destination circuit breakers.
func (rt *Runtime) Breakers() *health.BreakerSet { return rt.breakers }

// Health exposes the attached failure monitor; nil without WithHealth.
func (rt *Runtime) Health() *health.Monitor { return rt.monitor }

// HealthScore reports the monitor's gray-failure score for a node in
// [0,1] (0 healthy, 1 suspect/dead), or 0 when no monitor is attached —
// without health evidence every destination looks equally fine, and
// score-aware selection degenerates to the original orderings. Proxy
// layers use it to prefer or deprioritize destinations.
func (rt *Runtime) HealthScore(n wire.NodeID) float64 {
	if rt.monitor == nil {
		return 0
	}
	return rt.monitor.Score(n)
}

// RegisterIdempotent declares that the named methods of a service type
// are safe to replay: re-executing one against an alternate binding
// yields the same outcome. Failover-aware stubs only rebind-and-replay an
// invocation that may already have executed when its method is declared
// here (or the call's ctx is marked with WithIdempotent).
func (rt *Runtime) RegisterIdempotent(typeName string, methods ...string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	set, ok := rt.idem[typeName]
	if !ok {
		set = make(map[string]bool)
		rt.idem[typeName] = set
	}
	for _, m := range methods {
		set[m] = true
	}
}

// IsIdempotent reports whether the method was declared replay-safe for
// the type.
func (rt *Runtime) IsIdempotent(typeName, method string) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.idem[typeName][method]
}

// degradePressureScore is the health score at or above which an
// answered call to a degraded destination counts as soft breaker
// pressure (see health.Breaker.Pressure) instead of a success.
const degradePressureScore = 0.75

// GuardedCall is Client().CallFrame behind the destination node's circuit
// breaker, with the outcome fed back to the breaker and (when attached)
// the health monitor. Every proxy kind issues its remote calls through
// it, and breakers are keyed per node — one failing node trips one shared
// breaker however many proxies (or contexts on that node) the calls
// target. An open breaker rejects immediately with ErrCircuitOpen —
// failing fast instead of burning a retransmit budget against a node
// already known to be down.
func (rt *Runtime) GuardedCall(ctx context.Context, dst wire.ObjAddr, kind wire.Kind, payload []byte) (*wire.Frame, error) {
	br := rt.breakers.For(dst.Addr.Node)
	ok, probe := br.Admit()
	if !ok {
		rt.circuitRejects.Inc()
		return nil, fmt.Errorf("%w: %s", ErrCircuitOpen, dst.Addr)
	}
	start := time.Now()
	f, err := rt.client.CallFrame(ctx, dst, kind, payload)
	switch {
	case err == nil || isRemoteAnswer(err):
		// Any answer — even an error frame — proves the node serves. The
		// round-trip time feeds the monitor's gray-failure score, and a
		// destination the monitor grades as strongly degraded earns soft
		// breaker pressure instead of a clean success: a node that answers
		// every call 10× too slowly eventually trips its breaker and gets
		// ejected, exactly like one that stops answering.
		pressured := false
		if rt.monitor != nil {
			rt.monitor.ReportLatency(dst.Addr.Node, time.Since(start))
			st := rt.monitor.Status(dst.Addr.Node)
			pressured = st.State == health.StateDegraded && st.Score >= degradePressureScore
		}
		if pressured {
			br.Pressure()
		} else {
			br.Success()
		}
	case isNodeFailure(err):
		br.Failure()
		if rt.monitor != nil {
			rt.monitor.ReportFailure(dst.Addr.Node)
		}
	default:
		// ctx cancellation or local errors: no evidence about the node, so
		// the monitor hears nothing. The half-open probe must still report,
		// though — an unreported probe stalls recovery until the breaker's
		// probe deadline — and the conservative reading of "the probe
		// learned nothing" is that the node is not yet proven healthy.
		if probe {
			br.Failure()
		}
	}
	return f, err
}

// isRemoteAnswer reports whether err carries a response frame from the
// destination (the node is reachable, the call just failed).
func isRemoteAnswer(err error) bool {
	var re *kernel.RemoteError
	return errors.As(err, &re)
}

// isNodeFailure reports whether err means the destination never answered:
// the evidence a breaker and a failure detector count. kernel.ErrClosed
// and netsim.ErrClosed are deliberately absent — they report the LOCAL
// kernel or network handle shutting down, which says nothing about the
// remote node's health.
func isNodeFailure(err error) bool {
	return errors.Is(err, rpc.ErrTooManyRetries) ||
		errors.Is(err, netsim.ErrNodeCrashed) ||
		errors.Is(err, netsim.ErrUnknownNode)
}

// RegisterProxyType installs the factory for a service type name. In the
// paper, the service *ships* its proxy code to the importing context; Go
// cannot load remote code safely, so deployments register the factory in
// every runtime (the service side still controls which factory that is —
// see DESIGN.md, substitutions).
func (rt *Runtime) RegisterProxyType(name string, f ProxyFactory) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.factories[name] = f
}

// factoryFor resolves the factory for a type name.
func (rt *Runtime) factoryFor(name string) (ProxyFactory, error) {
	rt.mu.Lock()
	f, ok := rt.factories[name]
	def := rt.defaultFactory
	rt.mu.Unlock()
	if ok {
		return f, nil
	}
	if def != nil {
		return def, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrNoFactory, name)
}

// ExportOption configures one export.
type ExportOption func(*exportConfig)

type exportConfig struct {
	protected bool
}

// Protected mints an unforgeable capability token for this export and
// embeds it in the returned reference: invocations that do not present it
// are denied. Only contexts that were *given* the reference (directly or
// through reference-passing) can reach the object — the proxy layer as a
// protection boundary, per the paper. Note that anyone holding the
// reference can pass it on; revocation requires unexporting.
func Protected() ExportOption {
	return func(c *exportConfig) { c.protected = true }
}

// Export makes svc reachable from other contexts under the given type
// name, returning the reference to hand out. Exporting the same service
// twice returns the original reference. The type's factory may wrap the
// service with server-side coordination logic (its Export half) and
// attach a private hint to the reference.
func (rt *Runtime) Export(svc Service, typeName string, opts ...ExportOption) (codec.Ref, error) {
	var cfg exportConfig
	for _, o := range opts {
		o(&cfg)
	}
	key, comparable := svcKey(svc)
	if comparable {
		rt.mu.Lock()
		if rec, ok := rt.bySvc[key]; ok {
			rt.mu.Unlock()
			return rec.ref, nil
		}
		rt.mu.Unlock()
	}

	srv := newServerObject(rt, svc)
	if cfg.protected {
		cap, err := mintCap()
		if err != nil {
			return codec.Ref{}, fmt.Errorf("core: mint capability: %w", err)
		}
		srv.cap = cap
	}
	id := rt.ktx.Register(srv.rpcServer())
	target := wire.ObjAddr{Addr: rt.Addr(), Object: id}

	ref := codec.Ref{Target: target, Type: typeName, Cap: srv.cap}
	if f, err := rt.factoryFor(typeName); err == nil {
		wrapped, hint, err := f.Export(rt, svc, ref)
		if err != nil {
			rt.ktx.Unregister(id)
			return codec.Ref{}, fmt.Errorf("core: export %q: %w", typeName, err)
		}
		if wrapped != nil {
			srv.setService(wrapped)
		}
		ref.Hint = hint
	}

	rec := &exportRecord{ref: ref, svc: svc, server: srv}
	rt.mu.Lock()
	if comparable {
		// Export race: keep the first registration.
		if prior, ok := rt.bySvc[key]; ok {
			rt.mu.Unlock()
			rt.ktx.Unregister(id)
			return prior.ref, nil
		}
		rt.bySvc[key] = rec
	}
	rt.exports[id] = rec
	rt.mu.Unlock()
	return ref, nil
}

// ExportVia registers f as the factory for typeName and exports svc
// through it, in one step. It is the deployment-side idiom for standing
// up a service with a non-default strategy:
//
//	ref, err := rt.ExportVia(cacheFactory, kv, "KV")
//
// instead of the two-call RegisterProxyType + Export dance. Importing
// runtimes still need the factory registered locally (Go cannot ship
// proxy code at runtime — see RegisterProxyType).
func (rt *Runtime) ExportVia(f ProxyFactory, svc Service, typeName string, opts ...ExportOption) (codec.Ref, error) {
	if f == nil {
		return codec.Ref{}, fmt.Errorf("core: ExportVia %q: nil factory", typeName)
	}
	rt.RegisterProxyType(typeName, f)
	return rt.Export(svc, typeName, opts...)
}

// Unexport withdraws a service. In-flight invocations complete; new ones
// get "no such object" errors.
func (rt *Runtime) Unexport(svc Service) error {
	key, comparable := svcKey(svc)
	if !comparable {
		return fmt.Errorf("%w: non-comparable service, use UnexportRef", ErrNotExported)
	}
	rt.mu.Lock()
	rec, ok := rt.bySvc[key]
	if ok {
		delete(rt.bySvc, key)
		delete(rt.exports, rec.ref.Target.Object)
	}
	rt.mu.Unlock()
	if !ok {
		return ErrNotExported
	}
	rt.ktx.Unregister(rec.ref.Target.Object)
	return nil
}

// DetachExport removes svc from the export tables but leaves its kernel
// object registered: the migration machinery calls this and then installs
// a forwarding tombstone at the old object id (via kernel Replace), so
// stale references keep resolving.
func (rt *Runtime) DetachExport(svc Service) (codec.Ref, bool) {
	key, comparable := svcKey(svc)
	if !comparable {
		return codec.Ref{}, false
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rec, ok := rt.bySvc[key]
	if !ok {
		return codec.Ref{}, false
	}
	delete(rt.bySvc, key)
	delete(rt.exports, rec.ref.Target.Object)
	return rec.ref, true
}

// UnexportRef withdraws an export by its reference (the only way to
// withdraw func-shaped services, which have no usable identity).
func (rt *Runtime) UnexportRef(ref codec.Ref) error {
	if ref.Target.Addr != rt.Addr() {
		return ErrNotExported
	}
	rt.mu.Lock()
	rec, ok := rt.exports[ref.Target.Object]
	if ok {
		delete(rt.exports, ref.Target.Object)
		if key, comparable := svcKey(rec.svc); comparable {
			delete(rt.bySvc, key)
		}
	}
	rt.mu.Unlock()
	if !ok {
		return ErrNotExported
	}
	rt.ktx.Unregister(ref.Target.Object)
	return nil
}

// RefFor returns the exported reference for a local service, if any.
func (rt *Runtime) RefFor(svc Service) (codec.Ref, bool) {
	key, comparable := svcKey(svc)
	if !comparable {
		return codec.Ref{}, false
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rec, ok := rt.bySvc[key]
	if !ok {
		return codec.Ref{}, false
	}
	return rec.ref, true
}

// LocalService resolves a reference that targets this runtime's own
// context back to the exported service instance.
func (rt *Runtime) LocalService(ref codec.Ref) (Service, bool) {
	if ref.Target.Addr != rt.Addr() {
		return nil, false
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rec, ok := rt.exports[ref.Target.Object]
	if !ok {
		return nil, false
	}
	return rec.svc, true
}

// dispatchService resolves a local reference to the service *as served* —
// including any coordination wrapper its factory installed at export time
// (cache coordinator, replica primary). Bypass proxies dispatch through
// this, so a co-located client's writes still trigger invalidations and
// replication exactly like a remote client's would. LocalService, by
// contrast, returns the unwrapped object (migration and tests need its
// identity).
func (rt *Runtime) dispatchService(ref codec.Ref) (Service, bool) {
	if ref.Target.Addr != rt.Addr() {
		return nil, false
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rec, ok := rt.exports[ref.Target.Object]
	if !ok {
		return nil, false
	}
	return rec.server.service(), true
}

// Import installs (or reuses) a proxy for ref in this context. References
// to objects in this very context short-circuit to a bypass proxy — no
// marshalling, no network. Everything else goes through the type's
// factory, so the service's chosen strategy governs how the client reaches
// it. Imported proxies are cached per target object.
func (rt *Runtime) Import(ref codec.Ref) (Proxy, error) {
	if _, ok := rt.LocalService(ref); ok {
		return newBypassProxy(rt, ref), nil
	}
	rt.mu.Lock()
	if p, ok := rt.proxies[ref.Target]; ok {
		rt.mu.Unlock()
		return p, nil
	}
	rt.mu.Unlock()

	f, err := rt.factoryFor(ref.Type)
	if err != nil {
		return nil, err
	}
	p, err := f.New(rt, ref)
	if err != nil {
		return nil, fmt.Errorf("core: import %s: %w", ref, err)
	}
	rt.mu.Lock()
	if prior, ok := rt.proxies[ref.Target]; ok {
		rt.mu.Unlock()
		_ = p.Close() // lost an import race; keep the first proxy
		return prior, nil
	}
	rt.proxies[ref.Target] = p
	rt.mu.Unlock()
	return p, nil
}

// ForgetProxy removes a proxy from the import cache (proxies call this
// from Close, and the migration machinery calls it when rebinding).
func (rt *Runtime) ForgetProxy(target wire.ObjAddr) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	delete(rt.proxies, target)
}

// ProxyCount reports how many proxies are installed (tests/metrics).
func (rt *Runtime) ProxyCount() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.proxies)
}

// CloseProxies closes and forgets every proxy in the import cache — the
// runtime's shutdown path. Proxy kinds with background work (a replica's
// repair loop, a cache's lease renewals) stop it on Close, so a node
// shutting down calls this before closing its kernel context; otherwise
// those loops outlive the context they serve.
func (rt *Runtime) CloseProxies() {
	rt.mu.Lock()
	ps := make([]Proxy, 0, len(rt.proxies))
	for _, p := range rt.proxies {
		ps = append(ps, p)
	}
	rt.proxies = make(map[wire.ObjAddr]Proxy)
	rt.mu.Unlock()
	for _, p := range ps {
		_ = p.Close()
	}
}

// Decoder builds a codec decoder that installs proxies for every Ref
// crossing into this context — the executable form of the paper's
// reference-export figure. Proxy implementations outside this package use
// it to decode their private protocols' payloads.
func (rt *Runtime) Decoder() *codec.Decoder { return rt.decoder() }

// LowerArgs converts proxies and exportable services in an outbound value
// vector to wire references, for proxy implementations that marshal their
// own private payloads.
func (rt *Runtime) LowerArgs(vals []any) ([]any, error) { return rt.encodeOutbound(vals) }

// decoder returns the runtime's shared ref-installing decoder (built
// once in NewRuntime — the executable form of the paper's
// reference-export figure).
func (rt *Runtime) decoder() *codec.Decoder { return rt.dec }

// encodeOutbound lowers proxies and exportable services in an argument or
// result vector to wire Refs. It does not mutate the input; when nothing
// in the vector needs lowering — the common case for plain-data calls —
// it returns the input slice unchanged, allocating nothing.
func (rt *Runtime) encodeOutbound(vals []any) ([]any, error) {
	if len(vals) == 0 {
		return vals, nil
	}
	plain := true
	for _, v := range vals {
		if needsLowering(v) {
			plain = false
			break
		}
	}
	if plain {
		return vals, nil
	}
	out := make([]any, len(vals))
	for i, v := range vals {
		lv, err := rt.lowerValue(v, 0)
		if err != nil {
			return nil, fmt.Errorf("core: outbound value %d: %w", i, err)
		}
		out[i] = lv
	}
	return out, nil
}

// needsLowering reports whether lowerValue could transform v (directly
// or inside a container). The shapes lowerValue passes through untouched
// are exactly the ones this returns false for.
func needsLowering(v any) bool {
	switch v.(type) {
	case Proxy, Exportable, Service, []any, map[string]any:
		return true
	default:
		return false
	}
}

func (rt *Runtime) lowerValue(v any, depth int) (any, error) {
	if depth > codec.MaxDepth {
		return nil, codec.ErrTooDeep
	}
	switch x := v.(type) {
	case Proxy:
		return x.Ref(), nil
	case Exportable:
		ref, err := rt.Export(x, x.ProxyType())
		if err != nil {
			return nil, err
		}
		return ref, nil
	case Service:
		// A bare service without a declared proxy type: if previously
		// exported we can still reference it, otherwise refuse.
		if ref, ok := rt.RefFor(x); ok {
			return ref, nil
		}
		return nil, fmt.Errorf("%w (pass a Proxy, a Ref, or implement Exportable)", ErrNotExported)
	case []any:
		out := make([]any, len(x))
		for i, e := range x {
			le, err := rt.lowerValue(e, depth+1)
			if err != nil {
				return nil, err
			}
			out[i] = le
		}
		return out, nil
	case map[string]any:
		out := make(map[string]any, len(x))
		for k, e := range x {
			le, err := rt.lowerValue(e, depth+1)
			if err != nil {
				return nil, err
			}
			out[k] = le
		}
		return out, nil
	default:
		return v, nil
	}
}

// svcKey gives a map key identifying a service instance. Services are
// usually pointer-shaped and comparable; func-shaped services
// (ServiceFunc) are not, so they opt out of identity dedup — each Export
// creates a fresh registration and Unexport must go through UnexportRef.
func svcKey(svc Service) (any, bool) {
	t := reflect.TypeOf(svc)
	if t != nil && t.Comparable() {
		return svc, true
	}
	return nil, false
}
