package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/codec"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/session"
	"repro/internal/wire"
)

// world is a test fixture: n runtimes, each in its own context on its own
// node, joined by a simulated network.
type world struct {
	net      *netsim.Network
	runtimes []*Runtime
}

func newWorld(t *testing.T, n int, opts ...netsim.NetworkOption) *world {
	t.Helper()
	w := &world{net: netsim.New(opts...)}
	for i := 0; i < n; i++ {
		ep, err := w.net.Attach(wire.NodeID(i + 1))
		if err != nil {
			t.Fatal(err)
		}
		node := kernel.NewNode(ep)
		t.Cleanup(func() { node.Close() })
		ktx, err := node.NewContext()
		if err != nil {
			t.Fatal(err)
		}
		w.runtimes = append(w.runtimes, NewRuntime(ktx))
	}
	t.Cleanup(w.net.Close)
	return w
}

// counter is the canonical test service.
type counter struct {
	mu sync.Mutex
	n  int64
}

func (c *counter) Invoke(ctx context.Context, method string, args []any) ([]any, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch method {
	case "get":
		return []any{c.n}, nil
	case "add":
		if len(args) != 1 {
			return nil, BadArgs(method, "want 1 arg")
		}
		d, ok := args[0].(int64)
		if !ok {
			return nil, BadArgs(method, fmt.Sprintf("want int64, got %T", args[0]))
		}
		c.n += d
		return []any{c.n}, nil
	case "fail":
		return nil, errors.New("deliberate failure")
	default:
		return nil, NoSuchMethod(method)
	}
}

func TestExportImportInvoke(t *testing.T) {
	w := newWorld(t, 2)
	server, client := w.runtimes[0], w.runtimes[1]

	ref, err := server.Export(&counter{}, "Counter")
	if err != nil {
		t.Fatal(err)
	}
	if ref.Type != "Counter" || ref.Target.Addr != server.Addr() {
		t.Fatalf("ref = %+v", ref)
	}

	p, err := client.Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := p.Invoke(ctx, "add", int64(5)); err != nil {
		t.Fatal(err)
	}
	res, err := p.Invoke(ctx, "get")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0] != int64(5) {
		t.Errorf("get = %v", res)
	}
}

func TestExportIdempotent(t *testing.T) {
	w := newWorld(t, 1)
	svc := &counter{}
	r1, err := w.runtimes[0].Export(svc, "Counter")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := w.runtimes[0].Export(svc, "Counter")
	if err != nil {
		t.Fatal(err)
	}
	if r1.Target != r2.Target {
		t.Errorf("double export gave %v and %v", r1.Target, r2.Target)
	}
}

func TestImportOwnRefIsBypass(t *testing.T) {
	w := newWorld(t, 1)
	rt := w.runtimes[0]
	svc := &counter{}
	ref, err := rt.Export(svc, "Counter")
	if err != nil {
		t.Fatal(err)
	}
	p, err := rt.Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.(*bypassProxy); !ok {
		t.Fatalf("import of local ref gave %T, want bypass", p)
	}
	if _, err := p.Invoke(context.Background(), "add", int64(3)); err != nil {
		t.Fatal(err)
	}
	if svc.n != 3 {
		t.Errorf("bypass did not reach the object: n = %d", svc.n)
	}
}

func TestImportCached(t *testing.T) {
	w := newWorld(t, 2)
	ref, err := w.runtimes[0].Export(&counter{}, "Counter")
	if err != nil {
		t.Fatal(err)
	}
	p1, err := w.runtimes[1].Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := w.runtimes[1].Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("two imports of one ref produced distinct proxies")
	}
	if w.runtimes[1].ProxyCount() != 1 {
		t.Errorf("ProxyCount = %d", w.runtimes[1].ProxyCount())
	}
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}
	if w.runtimes[1].ProxyCount() != 0 {
		t.Errorf("ProxyCount after Close = %d", w.runtimes[1].ProxyCount())
	}
}

func TestInvokeErrorPropagation(t *testing.T) {
	w := newWorld(t, 2)
	ref, _ := w.runtimes[0].Export(&counter{}, "Counter")
	p, _ := w.runtimes[1].Import(ref)
	ctx := context.Background()

	_, err := p.Invoke(ctx, "nope")
	var ie *InvokeError
	if !errors.As(err, &ie) || ie.Code != CodeNoSuchMethod {
		t.Errorf("unknown method err = %v", err)
	}
	_, err = p.Invoke(ctx, "add", "not-a-number")
	if !errors.As(err, &ie) || ie.Code != CodeBadArgs {
		t.Errorf("bad args err = %v", err)
	}
	_, err = p.Invoke(ctx, "fail")
	if !errors.As(err, &ie) || ie.Code != CodeApp || ie.Msg != "deliberate failure" {
		t.Errorf("app err = %v", err)
	}
}

func TestUnexport(t *testing.T) {
	w := newWorld(t, 2)
	svc := &counter{}
	ref, _ := w.runtimes[0].Export(svc, "Counter")
	p, _ := w.runtimes[1].Import(ref)
	if err := w.runtimes[0].Unexport(svc); err != nil {
		t.Fatal(err)
	}
	_, err := p.Invoke(context.Background(), "get")
	var ie *InvokeError
	if !errors.As(err, &ie) {
		t.Fatalf("invoke after unexport = %v", err)
	}
	if err := w.runtimes[0].Unexport(svc); !errors.Is(err, ErrNotExported) {
		t.Errorf("second Unexport = %v", err)
	}
}

func TestUnexportRefForFuncService(t *testing.T) {
	w := newWorld(t, 1)
	rt := w.runtimes[0]
	svc := ServiceFunc(func(ctx context.Context, method string, args []any) ([]any, error) {
		return []any{"ok"}, nil
	})
	ref, err := rt.Export(svc, "Fn")
	if err != nil {
		t.Fatal(err)
	}
	// Func services are non-comparable: Unexport refuses, UnexportRef works.
	if err := rt.Unexport(svc); !errors.Is(err, ErrNotExported) {
		t.Errorf("Unexport(func) = %v", err)
	}
	if err := rt.UnexportRef(ref); err != nil {
		t.Fatal(err)
	}
	if err := rt.UnexportRef(ref); !errors.Is(err, ErrNotExported) {
		t.Errorf("second UnexportRef = %v", err)
	}
}

// echoRefService hands back whatever proxy it was given, and can invoke it
// (the paper's Figure 2: references travel in arguments, proxies appear).
type echoRefService struct {
	got atomic.Value // Proxy
}

func (s *echoRefService) Invoke(ctx context.Context, method string, args []any) ([]any, error) {
	switch method {
	case "take":
		p, ok := args[0].(Proxy)
		if !ok {
			return nil, BadArgs(method, fmt.Sprintf("want Proxy, got %T", args[0]))
		}
		s.got.Store(p)
		return nil, nil
	case "callback":
		p := s.got.Load().(Proxy)
		return p.Invoke(ctx, "add", int64(10))
	case "give":
		p := s.got.Load().(Proxy)
		return []any{p}, nil
	default:
		return nil, NoSuchMethod(method)
	}
}

func TestRefInArgsInstallsProxy(t *testing.T) {
	w := newWorld(t, 3)
	rtA, rtB, rtC := w.runtimes[0], w.runtimes[1], w.runtimes[2]

	// A exports the ref-echo service; C exports a counter; B hands C's
	// counter to A, then asks A to invoke it.
	echo := &echoRefService{}
	echoRef, err := rtA.Export(echo, "Echo")
	if err != nil {
		t.Fatal(err)
	}
	cnt := &counter{}
	cntRef, err := rtC.Export(cnt, "Counter")
	if err != nil {
		t.Fatal(err)
	}

	echoProxy, err := rtB.Import(echoRef)
	if err != nil {
		t.Fatal(err)
	}
	cntProxy, err := rtB.Import(cntRef)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := echoProxy.Invoke(ctx, "take", cntProxy); err != nil {
		t.Fatal(err)
	}
	// A now holds a proxy for C's counter; invoking through it must hit C.
	if _, err := echoProxy.Invoke(ctx, "callback"); err != nil {
		t.Fatal(err)
	}
	if got := cnt.n; got != 10 {
		t.Errorf("counter on C = %d, want 10 (callback through installed proxy)", got)
	}
	// And the reference can travel back out in results.
	res, err := echoProxy.Invoke(ctx, "give")
	if err != nil {
		t.Fatal(err)
	}
	back, ok := res[0].(Proxy)
	if !ok {
		t.Fatalf("result = %T, want Proxy", res[0])
	}
	if back.Ref().Target != cntRef.Target {
		t.Errorf("returned ref = %v, want %v", back.Ref().Target, cntRef.Target)
	}
}

// room is an Exportable service used to test auto-export in results.
type room struct {
	name string
}

func (r *room) Invoke(ctx context.Context, method string, args []any) ([]any, error) {
	if method == "name" {
		return []any{r.name}, nil
	}
	return nil, NoSuchMethod(method)
}

func (r *room) ProxyType() string { return "Room" }

// hotel returns rooms by reference: the rooms are auto-exported.
type hotel struct {
	mu    sync.Mutex
	rooms map[string]*room
}

func (h *hotel) Invoke(ctx context.Context, method string, args []any) ([]any, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	switch method {
	case "book":
		name, _ := args[0].(string)
		rm, ok := h.rooms[name]
		if !ok {
			rm = &room{name: name}
			h.rooms[name] = rm
		}
		return []any{rm}, nil
	default:
		return nil, NoSuchMethod(method)
	}
}

func TestAutoExportInResults(t *testing.T) {
	w := newWorld(t, 2)
	rtA, rtB := w.runtimes[0], w.runtimes[1]
	h := &hotel{rooms: make(map[string]*room)}
	href, err := rtA.Export(h, "Hotel")
	if err != nil {
		t.Fatal(err)
	}
	hp, err := rtB.Import(href)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	res, err := hp.Invoke(ctx, "book", "101")
	if err != nil {
		t.Fatal(err)
	}
	rm, ok := res[0].(Proxy)
	if !ok {
		t.Fatalf("book returned %T, want Proxy", res[0])
	}
	if rm.Ref().Type != "Room" {
		t.Errorf("auto-export type = %q", rm.Ref().Type)
	}
	nameRes, err := rm.Invoke(ctx, "name")
	if err != nil {
		t.Fatal(err)
	}
	if nameRes[0] != "101" {
		t.Errorf("name = %v", nameRes[0])
	}
	// Booking the same room again must reference the same export.
	res2, err := hp.Invoke(ctx, "book", "101")
	if err != nil {
		t.Fatal(err)
	}
	rm2 := res2[0].(Proxy)
	if rm2.Ref().Target != rm.Ref().Target {
		t.Error("same room exported twice under different targets")
	}
}

func TestBareServiceInResultsRejected(t *testing.T) {
	w := newWorld(t, 2)
	rtA, rtB := w.runtimes[0], w.runtimes[1]
	// This service returns a non-Exportable, never-exported service value.
	bad := ServiceFunc(func(ctx context.Context, method string, args []any) ([]any, error) {
		return []any{&counter{}}, nil
	})
	ref, err := rtA.Export(bad, "Bad")
	if err != nil {
		t.Fatal(err)
	}
	p, err := rtB.Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Invoke(context.Background(), "anything")
	var ie *InvokeError
	if !errors.As(err, &ie) || ie.Code != CodeInternal {
		t.Errorf("err = %v, want internal error about unexported service", err)
	}
}

func TestNoFactoryWhenDefaultDisabled(t *testing.T) {
	w := newWorld(t, 2)
	ref, _ := w.runtimes[0].Export(&counter{}, "Unregistered")
	rtStrict := NewRuntime(w.runtimes[1].Kernel(), WithDefaultFactory(nil))
	if _, err := rtStrict.Import(ref); !errors.Is(err, ErrNoFactory) {
		t.Errorf("Import = %v, want ErrNoFactory", err)
	}
}

func TestRegisteredFactoryWins(t *testing.T) {
	w := newWorld(t, 2)
	ref, _ := w.runtimes[0].Export(&counter{}, "Counter")
	var used atomic.Bool
	w.runtimes[1].RegisterProxyType("Counter", factoryFunc(func(rt *Runtime, r codec.Ref) (Proxy, error) {
		used.Store(true)
		return NewStub(rt, r), nil
	}))
	if _, err := w.runtimes[1].Import(ref); err != nil {
		t.Fatal(err)
	}
	if !used.Load() {
		t.Error("registered factory was not used")
	}
}

type factoryFunc func(rt *Runtime, ref codec.Ref) (Proxy, error)

func (f factoryFunc) New(rt *Runtime, ref codec.Ref) (Proxy, error) { return f(rt, ref) }

func (factoryFunc) Export(*Runtime, Service, codec.Ref) (Service, []byte, error) {
	return nil, nil, nil
}

func TestStubFollowsForward(t *testing.T) {
	w := newWorld(t, 3)
	rtHome, rtNew, rtClient := w.runtimes[0], w.runtimes[1], w.runtimes[2]

	// The real object lives at rtNew.
	realRef, err := rtNew.Export(&counter{n: 7}, "Counter")
	if err != nil {
		t.Fatal(err)
	}
	// rtHome hosts a forwarding tombstone at a known object id.
	fwd := kernel.HandlerFunc(func(ktx *kernel.Context, f *wire.Frame) {
		_ = ktx.Respond(f, wire.KindForward, ForwardPayload(realRef))
	})
	fwdID := rtHome.Kernel().Register(fwd)
	staleRef := codec.Ref{
		Target: wire.ObjAddr{Addr: rtHome.Addr(), Object: fwdID},
		Type:   "Counter",
	}

	p, err := rtClient.Import(staleRef)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Invoke(context.Background(), "get")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != int64(7) {
		t.Errorf("get through forward = %v", res[0])
	}
	if p.Ref().Target != realRef.Target {
		t.Errorf("stub did not rebind: ref = %v", p.Ref())
	}
	stub := p.(*Stub)
	if _, forwards := stub.Stats(); forwards != 1 {
		t.Errorf("forwards = %d, want 1", forwards)
	}
}

func TestBypassFallsBackAfterUnexport(t *testing.T) {
	// A bypass proxy must not keep talking to a detached object. Here the
	// service is unexported and re-exported at a new id; the bypass falls
	// back to a stub, which (without a tombstone) reports unavailability
	// rather than silently using the stale copy.
	w := newWorld(t, 1)
	rt := w.runtimes[0]
	svc := &counter{}
	ref, err := rt.Export(svc, "Counter")
	if err != nil {
		t.Fatal(err)
	}
	p, err := rt.Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke(context.Background(), "add", int64(1)); err != nil {
		t.Fatal(err)
	}
	if err := rt.Unexport(svc); err != nil {
		t.Fatal(err)
	}
	_, err = p.Invoke(context.Background(), "add", int64(1))
	var ie *InvokeError
	if !errors.As(err, &ie) {
		t.Fatalf("invoke after unexport = %v, want InvokeError", err)
	}
	if svc.n != 1 {
		t.Errorf("stale object mutated after unexport: n = %d", svc.n)
	}
}

func TestClosedProxyRejects(t *testing.T) {
	w := newWorld(t, 2)
	ref, _ := w.runtimes[0].Export(&counter{}, "Counter")
	p, _ := w.runtimes[1].Import(ref)
	_ = p.Close()
	if _, err := p.Invoke(context.Background(), "get"); !errors.Is(err, ErrProxyClosed) {
		t.Errorf("invoke on closed proxy = %v", err)
	}
}

func TestConcurrentInvocations(t *testing.T) {
	w := newWorld(t, 2)
	ref, _ := w.runtimes[0].Export(&counter{}, "Counter")
	p, _ := w.runtimes[1].Import(ref)
	ctx := context.Background()
	var wg sync.WaitGroup
	const workers, perWorker = 8, 25
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				if _, err := p.Invoke(ctx, "add", int64(1)); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	res, err := p.Invoke(ctx, "get")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != int64(workers*perWorker) {
		t.Errorf("final count = %v, want %d", res[0], workers*perWorker)
	}
}

func TestCallerFrom(t *testing.T) {
	w := newWorld(t, 2)
	var seen atomic.Value
	svc := ServiceFunc(func(ctx context.Context, method string, args []any) ([]any, error) {
		if from, ok := CallerFrom(ctx); ok {
			seen.Store(from)
		}
		return nil, nil
	})
	ref, _ := w.runtimes[0].Export(svc, "Who")
	p, _ := w.runtimes[1].Import(ref)
	if _, err := p.Invoke(context.Background(), "x"); err != nil {
		t.Fatal(err)
	}
	from, ok := seen.Load().(wire.Addr)
	if !ok || from != w.runtimes[1].Addr() {
		t.Errorf("caller = %v, want %v", seen.Load(), w.runtimes[1].Addr())
	}
}

func TestInvokeErrorEncodingRoundTrip(t *testing.T) {
	in := &InvokeError{Code: CodeBadArgs, Method: "m", Msg: "details"}
	out := DecodeInvokeError(EncodeInvokeError("m", in))
	if out.Code != in.Code || out.Method != in.Method || out.Msg != in.Msg {
		t.Errorf("round-trip = %+v, want %+v", out, in)
	}
	// Foreign payloads degrade to CodeInternal with raw text.
	out = DecodeInvokeError([]byte("no such context"))
	if out.Code != CodeInternal || out.Msg != "no such context" {
		t.Errorf("foreign payload = %+v", out)
	}
}

// TestExpiredPayloadPinsCode pins the cross-package constant: the session
// package preencodes its expired-retry reply with a literal code value
// (it cannot import core — core imports it), so this test is what keeps
// that literal and CodeSessionExpired from drifting apart.
func TestExpiredPayloadPinsCode(t *testing.T) {
	ie := DecodeInvokeError(session.ExpiredPayload())
	if ie.Code != CodeSessionExpired {
		t.Fatalf("session.ExpiredPayload decodes to code %v, want %v (update the literal in session/blob.go)", ie.Code, CodeSessionExpired)
	}
	if ie.Msg == "" {
		t.Fatal("expired payload lost its message")
	}
}

func TestCodeString(t *testing.T) {
	for c, want := range map[Code]string{
		CodeApp: "app", CodeNoSuchMethod: "no-such-method", CodeBadArgs: "bad-args",
		CodeInternal: "internal", CodeUnavailable: "unavailable", Code(42): "code(42)",
	} {
		if got := c.String(); got != want {
			t.Errorf("Code(%d) = %q, want %q", c, got, want)
		}
	}
}

func TestRefsNestedInCollections(t *testing.T) {
	// Proxies buried inside lists and maps in arguments must lower to
	// references on the way out and come back as installed proxies.
	w := newWorld(t, 3)
	rtA, rtB, rtC := w.runtimes[0], w.runtimes[1], w.runtimes[2]
	ctx := context.Background()

	cnt := &counter{}
	cntRef, err := rtC.Export(cnt, "Counter")
	if err != nil {
		t.Fatal(err)
	}
	sink := ServiceFunc(func(ctx context.Context, method string, args []any) ([]any, error) {
		// Dig the proxy out of the nested structure and invoke it.
		m, ok := args[0].(map[string]any)
		if !ok {
			return nil, BadArgs(method, fmt.Sprintf("want map, got %T", args[0]))
		}
		list, ok := m["targets"].([]any)
		if !ok || len(list) != 1 {
			return nil, BadArgs(method, "want targets list")
		}
		p, ok := list[0].(Proxy)
		if !ok {
			return nil, BadArgs(method, fmt.Sprintf("want Proxy, got %T", list[0]))
		}
		return p.Invoke(ctx, "add", int64(5))
	})
	sinkRef, err := rtA.Export(sink, "Sink")
	if err != nil {
		t.Fatal(err)
	}
	sinkProxy, err := rtB.Import(sinkRef)
	if err != nil {
		t.Fatal(err)
	}
	cntProxy, err := rtB.Import(cntRef)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sinkProxy.Invoke(ctx, "go", map[string]any{"targets": []any{cntProxy}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != int64(5) || cnt.n != 5 {
		t.Errorf("res = %v, counter = %d", res, cnt.n)
	}
}

func TestBypassRefReportsReboundLocation(t *testing.T) {
	w := newWorld(t, 1)
	rt := w.runtimes[0]
	svc := &counter{}
	ref, err := rt.Export(svc, "Counter")
	if err != nil {
		t.Fatal(err)
	}
	p, err := rt.Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	if p.Ref().Target != ref.Target {
		t.Errorf("bypass ref = %v", p.Ref())
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke(context.Background(), "get"); !errors.Is(err, ErrProxyClosed) {
		t.Errorf("closed bypass invoke = %v", err)
	}
}

func TestProtectedExportDeniesForgedRefs(t *testing.T) {
	w := newWorld(t, 2)
	server, client := w.runtimes[0], w.runtimes[1]
	svc := &counter{}
	ref, err := server.Export(svc, "Counter", Protected())
	if err != nil {
		t.Fatal(err)
	}
	if ref.Cap == 0 {
		t.Fatal("protected export minted no capability")
	}
	ctx := context.Background()

	// The legitimate reference works.
	p, err := client.Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke(ctx, "add", int64(1)); err != nil {
		t.Fatal(err)
	}

	// A forged reference — right address, missing or wrong token — is
	// denied, and the object is untouched.
	for _, forged := range []codec.Ref{
		{Target: ref.Target, Type: ref.Type},                   // no token
		{Target: ref.Target, Type: ref.Type, Cap: ref.Cap + 1}, // wrong token
	} {
		fp := NewStub(client, forged)
		_, err := fp.Invoke(ctx, "add", int64(100))
		var ie *InvokeError
		if !errors.As(err, &ie) || ie.Code != CodeDenied {
			t.Errorf("forged invoke = %v, want CodeDenied", err)
		}
	}
	if svc.n != 1 {
		t.Errorf("counter = %d after forged attempts, want 1", svc.n)
	}
}

func TestProtectedRefTravelsWithCapability(t *testing.T) {
	// Passing a protected reference through a third party must carry the
	// capability: the receiver's installed proxy can invoke.
	w := newWorld(t, 3)
	rtA, rtB, rtC := w.runtimes[0], w.runtimes[1], w.runtimes[2]
	ctx := context.Background()

	echo := &echoRefService{}
	echoRef, err := rtA.Export(echo, "Echo")
	if err != nil {
		t.Fatal(err)
	}
	cnt := &counter{}
	cntRef, err := rtC.Export(cnt, "Counter", Protected())
	if err != nil {
		t.Fatal(err)
	}
	echoProxy, err := rtB.Import(echoRef)
	if err != nil {
		t.Fatal(err)
	}
	cntProxy, err := rtB.Import(cntRef)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := echoProxy.Invoke(ctx, "take", cntProxy); err != nil {
		t.Fatal(err)
	}
	// A's installed proxy holds the travelled capability and can invoke.
	if _, err := echoProxy.Invoke(ctx, "callback"); err != nil {
		t.Fatalf("callback through travelled capability: %v", err)
	}
	if cnt.n != 10 {
		t.Errorf("counter = %d", cnt.n)
	}
}

func TestProtectedBatchDenied(t *testing.T) {
	w := newWorld(t, 2)
	factory := NewBatchFactory([]string{"append"}, WithBatchSize(10), WithBatchInterval(0))
	w.runtimes[1].RegisterProxyType("Log", factory)
	svc := &logService{}
	ref, err := w.runtimes[0].Export(svc, "Log", Protected())
	if err != nil {
		t.Fatal(err)
	}
	// A batch built on a forged ref is rejected wholesale.
	forged := ref
	forged.Cap = 0
	p, err := factory.New(w.runtimes[1], forged)
	if err != nil {
		t.Fatal(err)
	}
	bp := p.(*BatchProxy)
	if _, err := bp.Invoke(context.Background(), "append", "x"); err != nil {
		t.Fatal(err)
	}
	err = bp.Flush(context.Background())
	var ie *InvokeError
	if !errors.As(err, &ie) || ie.Code != CodeDenied {
		t.Errorf("forged batch flush = %v, want CodeDenied", err)
	}
	if len(svc.snapshot()) != 0 {
		t.Error("forged batch executed")
	}
}
