package core

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"sync"

	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/wire"
)

// mintCap draws an unforgeable, nonzero capability token.
func mintCap() (uint64, error) {
	var b [8]byte
	for {
		if _, err := cryptorand.Read(b[:]); err != nil {
			return 0, err
		}
		if v := binary.BigEndian.Uint64(b[:]); v != 0 {
			return v, nil
		}
	}
}

// serverObject is the server-side half of an export: it receives request
// frames for one service, decodes the invocation (installing proxies for
// any references in the arguments), runs the service, and encodes the
// results (lowering any proxies/services in them to references). It sits
// behind an rpc.Server so retransmitted requests are suppressed
// (at-most-once execution).
type serverObject struct {
	rt *Runtime
	// cap is the capability token invocations must present; zero means the
	// export is unprotected.
	cap uint64

	mu  sync.RWMutex
	svc Service

	// callerCtx caches the base invocation context per caller address.
	// Every request needs WithCaller(Background, from), and the set of
	// callers is the set of live kernel contexts — small and stable — so
	// building the value context once per caller instead of once per
	// request removes two allocations from every dispatch. Capped as a
	// guard against pathological context churn.
	callerMu  sync.RWMutex
	callerCtx map[wire.Addr]context.Context

	srv *rpc.Server
}

// maxCallerCtxs bounds the per-export caller-context cache.
const maxCallerCtxs = 1024

func (so *serverObject) callerContext(from wire.Addr) context.Context {
	so.callerMu.RLock()
	ctx, ok := so.callerCtx[from]
	so.callerMu.RUnlock()
	if ok {
		return ctx
	}
	ctx = WithCaller(context.Background(), from)
	so.callerMu.Lock()
	if so.callerCtx == nil {
		so.callerCtx = make(map[wire.Addr]context.Context)
	}
	if len(so.callerCtx) < maxCallerCtxs {
		so.callerCtx[from] = ctx
	}
	so.callerMu.Unlock()
	return ctx
}

func newServerObject(rt *Runtime, svc Service) *serverObject {
	so := &serverObject{rt: rt, svc: svc}
	so.srv = rpc.NewServer(rpc.HandlerFunc(so.handle))
	return so
}

// rpcServer exposes the kernel handler to register.
func (so *serverObject) rpcServer() *rpc.Server { return so.srv }

// setService swaps the served implementation (used by factories whose
// Export half wraps the service with coordination logic).
func (so *serverObject) setService(svc Service) {
	so.mu.Lock()
	defer so.mu.Unlock()
	so.svc = svc
}

func (so *serverObject) service() Service {
	so.mu.RLock()
	defer so.mu.RUnlock()
	return so.svc
}

func (so *serverObject) handle(req *rpc.Request) (wire.Kind, []byte, []byte) {
	if req.Kind == KindBatch {
		reply, err := so.handleBatch(req.Frame.Payload)
		if err != nil {
			return 0, nil, EncodeInvokeError("batch", err)
		}
		return KindBatch, reply, nil
	}
	sc, budget, cap, method, args, err := DecodeRequestFull(so.rt.decoder(), req.Frame.Payload)
	if err != nil {
		return 0, nil, EncodeInvokeError("", &InvokeError{Code: CodeInternal, Msg: err.Error()})
	}
	if so.cap != 0 && cap != so.cap {
		return 0, nil, EncodeInvokeError(method, &InvokeError{Code: CodeDenied, Method: method, Msg: "capability required"})
	}
	so.rt.serveCalls.Inc()
	ctx := so.callerContext(req.From)
	if sid, seq, ok := wire.PeekSession(req.Frame.Payload); ok {
		// Recover the exactly-once identity the stub stamped, so layers
		// the service forwards through (replica write path, shard guard)
		// keep it attached to their inner calls.
		ctx = ContextWithSession(ctx, sid, seq)
	}
	// The request carried the client's remaining budget: expire our ctx
	// when theirs does, so abandoned work cancels instead of completing
	// into the void.
	ctx, cancel := ApplyBudget(ctx, budget)
	defer cancel()
	finish := func(error) {}
	if sc.Trace != 0 {
		// Parent the serve span under the caller's stub span and thread it
		// through ctx, so any onward hops the service makes (smart-proxy
		// fan-out included) chain into the same tree.
		ctx = obs.ContextWithSpan(ctx, sc)
		ctx, finish = so.rt.Tracer().StartSpan(ctx, "serve:"+method, so.rt.where)
	}
	results, err := so.service().Invoke(ctx, method, args)
	finish(err)
	if err != nil {
		return 0, nil, EncodeInvokeError(method, err)
	}
	lowered, err := so.rt.encodeOutbound(results)
	if err != nil {
		return 0, nil, EncodeInvokeError(method, &InvokeError{Code: CodeInternal, Method: method, Msg: err.Error()})
	}
	reply, err := EncodeResults(lowered)
	if err != nil {
		return 0, nil, EncodeInvokeError(method, &InvokeError{Code: CodeInternal, Method: method, Msg: err.Error()})
	}
	return wire.KindReply, reply, nil
}
