package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/health"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/wire"
)

// fworld is the fault-injection test fixture: like world, but each runtime
// gets a fast deterministic rpc client and a tunable breaker.
type fworld struct {
	net      *netsim.Network
	runtimes []*Runtime
}

func newFaultWorld(t *testing.T, n int, cliOpts []rpc.ClientOption, rtOpts ...RuntimeOption) *fworld {
	t.Helper()
	w := &fworld{net: netsim.New(netsim.WithSeed(1))}
	for i := 0; i < n; i++ {
		ep, err := w.net.Attach(wire.NodeID(i + 1))
		if err != nil {
			t.Fatal(err)
		}
		node := kernel.NewNode(ep)
		t.Cleanup(func() { node.Close() })
		ktx, err := node.NewContext()
		if err != nil {
			t.Fatal(err)
		}
		opts := append([]RuntimeOption{WithClient(rpc.NewClient(ktx, cliOpts...))}, rtOpts...)
		w.runtimes = append(w.runtimes, NewRuntime(ktx, opts...))
	}
	t.Cleanup(w.net.Close)
	return w
}

func fastClient() []rpc.ClientOption {
	return []rpc.ClientOption{rpc.WithRetryInterval(2 * time.Millisecond), rpc.WithMaxAttempts(4)}
}

func TestDeadlineHeaderRoundTrip(t *testing.T) {
	if got := AppendDeadlineHeader(nil, 0); len(got) != 0 {
		t.Errorf("zero budget appended %d bytes", len(got))
	}
	hdr := AppendDeadlineHeader(nil, 250*time.Millisecond)
	budget, rest := SplitDeadlineHeader(append(hdr, 0x09, 0x00))
	if budget != 250*time.Millisecond || len(rest) != 2 {
		t.Errorf("split = %v, %d trailing", budget, len(rest))
	}
	// Headerless payloads pass through untouched.
	if b, rest := SplitDeadlineHeader([]byte{0x09, 0x00}); b != 0 || len(rest) != 2 {
		t.Errorf("headerless split = %v, %d", b, len(rest))
	}
}

func TestSplitHeadersEitherOrder(t *testing.T) {
	body := []byte{0x09, 0x00} // an empty codec list
	sc := obs.SpanContext{Trace: 0xABCD, Span: 0x1234}
	both := AppendDeadlineHeader(nil, time.Second)
	both = obs.AppendSpanHeader(both, sc)
	both = append(both, body...)
	gotSC, budget, rest := SplitHeaders(both)
	if gotSC != sc || budget != time.Second || len(rest) != len(body) {
		t.Errorf("deadline-first: sc=%v budget=%v rest=%d", gotSC, budget, len(rest))
	}

	rev := obs.AppendSpanHeader(nil, sc)
	rev = AppendDeadlineHeader(rev, time.Second)
	rev = append(rev, body...)
	gotSC, budget, rest = SplitHeaders(rev)
	if gotSC != sc || budget != time.Second || len(rest) != len(body) {
		t.Errorf("span-first: sc=%v budget=%v rest=%d", gotSC, budget, len(rest))
	}

	gotSC, budget, rest = SplitHeaders(body)
	if gotSC.Trace != 0 || budget != 0 || len(rest) != len(body) {
		t.Errorf("headerless: sc=%v budget=%v rest=%d", gotSC, budget, len(rest))
	}
}

// blocker waits for ctx cancellation (or a long fallback) and reports what
// it observed.
type blocker struct {
	observed chan error
}

func (b *blocker) Invoke(ctx context.Context, method string, args []any) ([]any, error) {
	select {
	case <-ctx.Done():
		b.observed <- ctx.Err()
		return nil, ctx.Err()
	case <-time.After(5 * time.Second):
		b.observed <- nil
		return []any{}, nil
	}
}

func TestDeadlinePropagatesToServer(t *testing.T) {
	w := newFaultWorld(t, 2, []rpc.ClientOption{rpc.WithRetryInterval(time.Hour)})
	server, client := w.runtimes[0], w.runtimes[1]
	b := &blocker{observed: make(chan error, 1)}
	ref, err := server.Export(b, "Blocker")
	if err != nil {
		t.Fatal(err)
	}
	p, err := client.Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, invokeErr := p.Invoke(ctx, "wait")
	if invokeErr == nil {
		t.Fatal("expired call returned no error")
	}
	select {
	case err := <-b.observed:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("server observed %v, want ctx deadline cancellation", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("server never observed the client's budget expiring")
	}
}

func TestHeaderlessRequestStillServes(t *testing.T) {
	// A pre-deadline peer sends a bare [cap, method] payload with no
	// headers at all; the server must decode and serve it unchanged.
	w := newFaultWorld(t, 2, fastClient())
	server, client := w.runtimes[0], w.runtimes[1]
	ref, err := server.Export(&counter{n: 41}, "Counter")
	if err != nil {
		t.Fatal(err)
	}
	payload, err := EncodeRequest(ref.Cap, "get", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Client().Call(context.Background(), ref.Target, wire.KindRequest, payload)
	if err != nil {
		t.Fatal(err)
	}
	results, err := DecodeResults(client.decoder(), resp)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].(int64) != 41 {
		t.Errorf("results = %v", results)
	}
}

func TestStubFailsOverOnNotSent(t *testing.T) {
	// First binding points at an object that does not exist ("no such
	// object" — provably never executed), so even a non-idempotent method
	// may redirect to the alternate.
	w := newFaultWorld(t, 3, fastClient())
	backup, client := w.runtimes[1], w.runtimes[2]
	realRef, err := backup.Export(&counter{}, "Counter")
	if err != nil {
		t.Fatal(err)
	}
	bogus := codec.Ref{
		Target: wire.ObjAddr{Addr: w.runtimes[0].Addr(), Object: 9999},
		Type:   "Counter",
	}
	p, err := client.Import(bogus)
	if err != nil {
		t.Fatal(err)
	}
	stub := p.(*Stub)
	stub.SetAlternates([]codec.Ref{bogus, realRef})
	res, err := stub.Invoke(context.Background(), "add", int64(3))
	if err != nil {
		t.Fatalf("failover invoke: %v", err)
	}
	if res[0].(int64) != 3 {
		t.Errorf("result = %v", res[0])
	}
	if stub.Failovers() != 1 {
		t.Errorf("failovers = %d, want 1", stub.Failovers())
	}
	if stub.Ref().Target != realRef.Target {
		t.Error("stub did not rebind to the alternate")
	}
}

func TestStubFailoverGatedOnIdempotency(t *testing.T) {
	w := newFaultWorld(t, 3, fastClient())
	primary, backup, client := w.runtimes[0], w.runtimes[1], w.runtimes[2]
	ref1, err := primary.Export(&counter{}, "Counter")
	if err != nil {
		t.Fatal(err)
	}
	ref2, err := backup.Export(&counter{}, "Counter")
	if err != nil {
		t.Fatal(err)
	}
	p, err := client.Import(ref1)
	if err != nil {
		t.Fatal(err)
	}
	stub := p.(*Stub)
	stub.SetAlternates([]codec.Ref{ref1, ref2})

	w.net.Crash(1)

	// "add" is not declared idempotent: the attempt may have executed, so
	// the stub must surface the failure instead of replaying it.
	_, err = stub.Invoke(context.Background(), "add", int64(1))
	var ie *InvokeError
	if !errors.As(err, &ie) || ie.Code != CodeUnavailable {
		t.Fatalf("non-idempotent call under crash: err = %v, want unavailable", err)
	}
	if stub.Failovers() != 0 {
		t.Errorf("failovers = %d, want 0 (replay was not licensed)", stub.Failovers())
	}

	// The same call under a ctx that declares it replay-safe fails over.
	res, err := stub.Invoke(WithIdempotent(context.Background()), "add", int64(5))
	if err != nil {
		t.Fatalf("idempotent-marked call: %v", err)
	}
	if res[0].(int64) != 5 {
		t.Errorf("result = %v", res[0])
	}
	if stub.Failovers() == 0 {
		t.Error("no failover recorded")
	}

	// Runtime-wide registration licenses replay too; the stub now bound to
	// node 2 keeps serving.
	client.RegisterIdempotent("Counter", "get")
	if _, err := stub.Invoke(context.Background(), "get"); err != nil {
		t.Fatalf("get after failover: %v", err)
	}
}

func TestCircuitBreakerFailsFastAndRecovers(t *testing.T) {
	w := newFaultWorld(t, 2, fastClient(),
		WithBreakerConfig(health.BreakerConfig{Threshold: 1, Cooldown: 40 * time.Millisecond}))
	server, client := w.runtimes[0], w.runtimes[1]
	ref, err := server.Export(&counter{}, "Counter")
	if err != nil {
		t.Fatal(err)
	}
	p, err := client.Import(ref)
	if err != nil {
		t.Fatal(err)
	}

	w.net.Crash(1)
	if _, err := p.Invoke(context.Background(), "get"); err == nil {
		t.Fatal("call to crashed node succeeded")
	}
	if st := client.Breakers().For(ref.Target.Addr.Node).State(); st != health.BreakerOpen {
		t.Fatalf("breaker state after failure = %v, want open", st)
	}

	// Open breaker: the next call is rejected locally, without burning a
	// retransmit budget.
	start := time.Now()
	_, err = p.Invoke(context.Background(), "get")
	elapsed := time.Since(start)
	if err == nil || !strings.Contains(err.Error(), "circuit open") {
		t.Fatalf("err = %v, want circuit open", err)
	}
	if elapsed > 20*time.Millisecond {
		t.Errorf("open-breaker rejection took %v, want fast-fail", elapsed)
	}

	// Node comes back; after the cooldown one probe closes the breaker.
	w.net.Restart(1)
	time.Sleep(50 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := p.Invoke(context.Background(), "get"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never recovered after restart")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := client.Breakers().For(ref.Target.Addr.Node).State(); st != health.BreakerClosed {
		t.Errorf("breaker state after recovery = %v, want closed", st)
	}
}

func TestProbeCtxExpiryDoesNotWedgeBreaker(t *testing.T) {
	// Regression: a half-open probe that ends with ctx cancellation (no
	// transport evidence either way) used to report nothing, leaving the
	// breaker half-open forever — every later call to the destination got
	// ErrCircuitOpen even after the node recovered.
	w := newFaultWorld(t, 2, fastClient(),
		WithBreakerConfig(health.BreakerConfig{Threshold: 1, Cooldown: 20 * time.Millisecond}))
	server, client := w.runtimes[0], w.runtimes[1]
	ref, err := server.Export(&counter{}, "Counter")
	if err != nil {
		t.Fatal(err)
	}
	p, err := client.Import(ref)
	if err != nil {
		t.Fatal(err)
	}

	w.net.Crash(1)
	if _, err := p.Invoke(context.Background(), "get"); err == nil {
		t.Fatal("call to crashed node succeeded")
	}
	br := client.Breakers().For(ref.Target.Addr.Node)
	if br.State() != health.BreakerOpen {
		t.Fatalf("breaker after failed call = %v, want open", br.State())
	}

	// Cooldown passes; the next call is admitted as the probe but its ctx
	// is already cancelled, so it ends without evidence about the node.
	time.Sleep(30 * time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _ = p.Invoke(ctx, "get")
	if st := br.State(); st == health.BreakerHalfOpen {
		t.Fatal("inconclusive probe left breaker half-open")
	}

	// Node recovers: calls must start succeeding again.
	w.net.Restart(1)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := p.Invoke(context.Background(), "get"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never recovered after inconclusive probe")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestGuardedCallFeedsMonitor(t *testing.T) {
	// Passive evidence: a monitor with no probe loop still learns about a
	// crash from the invocation path.
	w := newFaultWorld(t, 2, fastClient())
	server := w.runtimes[0]
	ref, err := server.Export(&counter{}, "Counter")
	if err != nil {
		t.Fatal(err)
	}

	// Rebuild the client runtime with a passive monitor attached.
	ep, err := w.net.Attach(7)
	if err != nil {
		t.Fatal(err)
	}
	node := kernel.NewNode(ep)
	t.Cleanup(func() { node.Close() })
	ktx, err := node.NewContext()
	if err != nil {
		t.Fatal(err)
	}
	mon := health.NewMonitor(ktx, health.WithInterval(0), health.WithSuspectAfter(1), health.WithDeadAfter(2))
	t.Cleanup(func() { mon.Close() })
	rt := NewRuntime(ktx, WithClient(rpc.NewClient(ktx, fastClient()...)), WithHealth(mon))

	p, err := rt.Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke(context.Background(), "get"); err != nil {
		t.Fatal(err)
	}
	if st := mon.State(1); st != health.StateAlive {
		t.Fatalf("state after success = %v", st)
	}
	w.net.Crash(1)
	_, _ = p.Invoke(context.Background(), "get")
	if st := mon.State(1); st == health.StateAlive {
		t.Error("monitor learned nothing from a failed call")
	}
}
