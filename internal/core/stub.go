package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/wire"
)

// StubFactory builds stub proxies: the minimal proxy, equivalent to
// classic RPC stub code. Every invocation marshals its arguments, crosses
// to the server under reliable request/reply, and unmarshals the results.
// It is the runtime's default factory and the baseline every smart proxy
// is measured against. Purely client-side: NopExport supplies its Export
// half.
type StubFactory struct{ NopExport }

var _ ProxyFactory = StubFactory{}

// New implements ProxyFactory.
func (StubFactory) New(rt *Runtime, ref codec.Ref) (Proxy, error) {
	return NewStub(rt, ref), nil
}

// Stub is the forwarding proxy. It tracks migration forwards (a call
// answered with KindForward rebinds to the object's new location and
// retries transparently), and it masks node failure: when a binding stops
// answering, the stub fails over to an alternate binding (SetAlternates)
// or asks its rebinder (SetRebinder, installed by naming.Resolve) for a
// fresh one — all behind the unchanged Invoke interface, which is the
// paper's point: how a service survives failures is the proxy's private
// business.
//
// Failover discipline: a call that provably never reached the service
// (open breaker, send error, "no such object/context" from a restarted
// node) may always be redirected; a call that *might* have executed (the
// retransmit budget ran out with no answer) is only replayed when the
// method was declared idempotent (Runtime.RegisterIdempotent, stub-level
// SetIdempotent, or a ctx marked WithIdempotent). Anything else surfaces
// the error: masking it could execute a non-idempotent operation twice.
type Stub struct {
	rt     *Runtime
	closed atomic.Bool

	mu       sync.Mutex
	ref      codec.Ref
	alts     []codec.Ref
	rebinder func(context.Context) (codec.Ref, bool)
	idem     map[string]bool

	calls     atomic.Uint64
	forwards  atomic.Uint64
	failovers atomic.Uint64
}

// NewStub builds a stub proxy without going through the factory registry
// (proxy implementations embed stubs for their write paths).
func NewStub(rt *Runtime, ref codec.Ref) *Stub {
	return &Stub{rt: rt, ref: ref}
}

// SetAlternates installs the bindings the stub may fail over to. Pass the
// full replica set (the current binding included): the stub skips
// whichever it already tried, so listing the primary costs nothing and
// lets a stub that failed over come back later.
func (s *Stub) SetAlternates(refs []codec.Ref) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.alts = append([]codec.Ref(nil), refs...)
}

// AddAlternate appends one failover binding.
func (s *Stub) AddAlternate(ref codec.Ref) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.alts = append(s.alts, ref)
}

// SetRebinder installs a callback that produces a fresh binding when
// every known one has failed — typically a naming re-lookup
// (naming.Resolve installs one automatically). It is consulted at most
// once per invocation.
func (s *Stub) SetRebinder(fn func(context.Context) (codec.Ref, bool)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rebinder = fn
}

// SetIdempotent declares methods replay-safe for this stub alone (the
// runtime-wide registry is Runtime.RegisterIdempotent).
func (s *Stub) SetIdempotent(methods ...string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.idem == nil {
		s.idem = make(map[string]bool)
	}
	for _, m := range methods {
		s.idem[m] = true
	}
}

// Invoke implements Proxy. When the caller's ctx carries a trace (opened
// via obs.Tracer.StartSpan, e.g. by proxyctl -trace), the stub records an
// invoke span and the request payload carries the span in its trace
// header for the server side to parent under. Untraced invocations skip
// tracing entirely — the hot path stays a single context lookup.
func (s *Stub) Invoke(ctx context.Context, method string, args ...any) ([]any, error) {
	if s.closed.Load() {
		return nil, ErrProxyClosed
	}
	s.calls.Add(1)
	s.rt.invokeCalls.Inc()
	ctx, finish := s.rt.Tracer().StartChild(ctx, "invoke:"+method, s.rt.where)
	res, err := s.invoke(ctx, method, args)
	finish(err)
	return res, err
}

func (s *Stub) invoke(ctx context.Context, method string, args []any) ([]any, error) {
	lowered, err := s.rt.encodeOutbound(args)
	if err != nil {
		return nil, &InvokeError{Code: CodeInternal, Method: method, Msg: err.Error()}
	}

	// Hedged reads (WithHedging): an idempotent invocation with a known
	// alternate races a delayed second attempt instead of walking the
	// sequential failover loop — see hedge.go.
	if s.rt.hedge != nil && s.isIdempotent(ctx, method) {
		if ref, alt, ok := s.hedgePair(); ok {
			return s.invokeHedged(ctx, method, lowered, ref, alt)
		}
	}

	// Session stamping (WithSessions): non-idempotent invocations get one
	// exactly-once identity, allocated HERE — before the failover loop —
	// so every retransmission and every alternate binding presents the
	// same (sid, seq) and a dedup-aware server recognizes the replay.
	// Idempotent methods stay unstamped: replaying them is harmless by
	// declaration, so caching their replies would be pure overhead. A ctx
	// already stamped (a layer above forwarding one logical invocation)
	// keeps its identity.
	sessioned := false
	if sid, _ := SessionFromContext(ctx); sid != 0 {
		sessioned = true
	} else if s.rt.sessions != nil && !s.isIdempotent(ctx, method) {
		sid, seq := s.rt.sessions.Next()
		ctx = ContextWithSession(ctx, sid, seq)
		sessioned = true
	}

	// The failover loop: try the current binding; on a redirectable
	// failure, move to the next untried alternate (or one rebinder
	// lookup) and go again. Tried targets are remembered so a stale
	// rebinder or a duplicate alternate cannot loop us; the map is
	// allocated lazily because the first binding almost always answers.
	var tried map[wire.ObjAddr]bool
	usedRebinder := false
	ref := s.Ref()
	// Pre-send ejection: nothing has gone out yet, so steering this call
	// to a healthier alternate can never replay an executed operation —
	// no idempotency licensing needed, unlike failover below. The stub's
	// binding is NOT rebound: the redirect is per-call, so traffic flows
	// back the moment the primary's score recovers.
	if next, ok := s.ejectBinding(ref); ok {
		s.rt.invokeEjections.Inc()
		ref = next
	}
	for {
		res, err := s.callBinding(ctx, ref, method, lowered)
		if err == nil {
			return res, nil
		}
		if ctx.Err() != nil {
			// Out of budget: whatever happened, there is no time to mask it.
			return nil, stubError(method, err)
		}
		class := classifyFailure(err)
		// A maybe-sent failure is replayable when the method is idempotent
		// (re-execution is harmless) OR the call carries a session identity
		// (the server's dedup table suppresses re-execution). The licensing
		// gate thus retires for session-stamped calls; it survives only as
		// the skip-the-stamp optimization above.
		if class == foNone || (class == foMaybeSent && !sessioned && !s.isIdempotent(ctx, method)) {
			return nil, stubError(method, err)
		}
		if tried == nil {
			tried = make(map[wire.ObjAddr]bool, 2)
		}
		tried[ref.Target] = true
		next, ok := s.nextBinding(ctx, tried, &usedRebinder)
		if !ok {
			return nil, stubError(method, err)
		}
		s.failovers.Add(1)
		s.rt.invokeFailovers.Inc()
		if sc, traced := obs.SpanFromContext(ctx); traced {
			tr := s.rt.Tracer()
			tr.Record(obs.Span{
				Trace: sc.Trace, ID: tr.NewSpanID(), Parent: sc.Span,
				Name: "failover:" + next.Target.String(), Where: s.rt.where,
				Start: time.Now(), Err: err.Error(),
			})
		}
		s.Rebind(next)
		ref = next
	}
}

// callBinding runs the invocation against one binding, following
// migration forwards. Transport-level failures return unconverted, so
// invoke can classify whether failing over is safe. The deadline header
// inside payload snapshots the remaining budget once per binding;
// retransmissions reuse it, so a request that spent retries in flight
// arrives with a stale, over-generous budget (see deadline.go).
func (s *Stub) callBinding(ctx context.Context, ref codec.Ref, method string, lowered []any) ([]any, error) {
	// The request payload lives in a pooled buffer: every transport copies
	// it before GuardedCall returns (netsim clones the frame, TCP encodes
	// into its staging buffer) and retransmission rewrites copy too, so
	// releasing at return cannot leave an alias behind.
	pb := wire.GetBuf()
	defer pb.Release()
	var err error
	if pb.B, err = AppendRequestCtx(pb.B[:0], ctx, ref.Cap, method, lowered); err != nil {
		return nil, &InvokeError{Code: CodeInternal, Method: method, Msg: err.Error()}
	}
	payload := pb.B
	sc, _ := obs.SpanFromContext(ctx)

	// Follow forwarding responses a bounded number of times: an object in
	// the middle of a migration storm must not loop us forever. The bound
	// comfortably exceeds any realistic tombstone chain (E9 sweeps to 32).
	const maxForwards = 64
	for hop := 0; ; hop++ {
		hopStart := time.Now()
		resp, err := s.rt.GuardedCall(ctx, ref.Target, wire.KindRequest, payload)
		if err != nil {
			return nil, err
		}
		switch resp.Kind {
		case wire.KindForward:
			if hop >= maxForwards {
				return nil, &InvokeError{Code: CodeUnavailable, Method: method, Msg: "forwarding chain too long"}
			}
			newRef, err := DecodeForward(resp.Payload)
			if err != nil {
				return nil, &InvokeError{Code: CodeInternal, Method: method, Msg: err.Error()}
			}
			if newRef.Cap != ref.Cap {
				if pb.B, err = AppendRequestCtx(pb.B[:0], ctx, newRef.Cap, method, lowered); err != nil {
					return nil, &InvokeError{Code: CodeInternal, Method: method, Msg: err.Error()}
				}
				payload = pb.B
			}
			s.Rebind(newRef)
			ref = newRef
			s.forwards.Add(1)
			s.rt.invokeForwards.Inc()
			if tr := s.rt.Tracer(); sc.Trace != 0 {
				tr.Record(obs.Span{
					Trace: sc.Trace, ID: tr.NewSpanID(), Parent: sc.Span,
					Name: "forward:" + newRef.Target.String(), Where: s.rt.where,
					Start: hopStart, Dur: time.Since(hopStart),
				})
			}
			continue
		default:
			return DecodeResults(s.rt.decoder(), resp.Payload)
		}
	}
}

// failoverClass grades a failed attempt by what it proves.
type failoverClass int

const (
	// foNone: a real answer (an application error, a denial). Not a node
	// failure; failing over would be wrong.
	foNone failoverClass = iota
	// foNotSent: the request provably never reached the service, so
	// redirecting it cannot double-execute anything.
	foNotSent
	// foMaybeSent: no answer arrived, but the request may have executed.
	// Replay only under an idempotency declaration.
	foMaybeSent
)

func classifyFailure(err error) failoverClass {
	var re *kernel.RemoteError
	if errors.As(err, &re) {
		// A no-route answer (wire.FlagNoRoute) is what a restarted (or
		// wrong) node's kernel says when the export is not there, and an
		// overload pushback (wire.FlagPushback) means the admission
		// controller shed the frame before dispatch: either way the
		// invocation provably did not run, so redirecting it cannot
		// double-execute anything. Anything else — including application
		// errors whose text happens to resemble the kernel's — is a real
		// answer from the service.
		if re.NoRoute || re.Pushback {
			return foNotSent
		}
		return foNone
	}
	var ie *InvokeError
	if errors.As(err, &ie) {
		return foNone
	}
	switch {
	case errors.Is(err, ErrCircuitOpen),
		errors.Is(err, netsim.ErrNodeCrashed),
		errors.Is(err, netsim.ErrUnknownNode):
		return foNotSent
	case errors.Is(err, rpc.ErrTooManyRetries),
		errors.Is(err, kernel.ErrClosed),
		errors.Is(err, netsim.ErrClosed):
		return foMaybeSent
	}
	return foNone
}

func (s *Stub) isIdempotent(ctx context.Context, method string) bool {
	if IdempotentFrom(ctx) {
		return true
	}
	s.mu.Lock()
	local := s.idem[method]
	typeName := s.ref.Type
	s.mu.Unlock()
	return local || s.rt.IsIdempotent(typeName, method)
}

// ejectBinding proposes a healthier alternate to use in place of ref
// when the monitor grades ref's node as strongly degraded (score at or
// above the soft-pressure threshold) and some alternate scores strictly
// better. Callers invoke it before anything is sent.
func (s *Stub) ejectBinding(ref codec.Ref) (codec.Ref, bool) {
	if s.rt.monitor == nil {
		return ref, false
	}
	cur := s.rt.HealthScore(ref.Target.Addr.Node)
	if cur < degradePressureScore {
		return ref, false
	}
	s.mu.Lock()
	alts := append([]codec.Ref(nil), s.alts...)
	s.mu.Unlock()
	best, bestScore, found := ref, cur, false
	for _, a := range alts {
		if a.Target == ref.Target {
			continue
		}
		if sc := s.rt.HealthScore(a.Target.Addr.Node); sc < bestScore {
			best, bestScore, found = a, sc, true
		}
	}
	return best, found
}

// nextBinding picks the untried alternate whose node carries the lowest
// gray-failure score (first-listed wins ties, so without a monitor the
// original listed order is preserved), falling back to one rebinder
// lookup per invocation.
func (s *Stub) nextBinding(ctx context.Context, tried map[wire.ObjAddr]bool, usedRebinder *bool) (codec.Ref, bool) {
	s.mu.Lock()
	alts := append([]codec.Ref(nil), s.alts...)
	rb := s.rebinder
	s.mu.Unlock()
	var best codec.Ref
	bestScore, found := 0.0, false
	for _, a := range alts {
		if tried[a.Target] {
			continue
		}
		if sc := s.rt.HealthScore(a.Target.Addr.Node); !found || sc < bestScore {
			best, bestScore, found = a, sc, true
		}
	}
	if found {
		return best, true
	}
	if rb != nil && !*usedRebinder {
		*usedRebinder = true
		if ref, ok := rb(ctx); ok && !tried[ref.Target] {
			return ref, true
		}
	}
	return codec.Ref{}, false
}

// stubError converts a raw attempt error into what Invoke surfaces.
func stubError(method string, err error) error {
	var ie *InvokeError
	if errors.As(err, &ie) {
		return ie
	}
	return RemoteToInvokeError(method, err)
}

// Ref implements Proxy.
func (s *Stub) Ref() codec.Ref {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ref
}

func (s *Stub) target() wire.ObjAddr {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ref.Target
}

// Rebind points the stub at a new location (migration and failover).
func (s *Stub) Rebind(newRef codec.Ref) {
	s.mu.Lock()
	old := s.ref.Target
	s.ref = newRef
	s.mu.Unlock()
	if old != newRef.Target {
		s.rt.ForgetProxy(old)
	}
}

// Stats reports how many invocations and forward-rebinds this stub served.
func (s *Stub) Stats() (calls, forwards uint64) {
	return s.calls.Load(), s.forwards.Load()
}

// Failovers reports how many times this stub redirected a call to an
// alternate binding.
func (s *Stub) Failovers() uint64 { return s.failovers.Load() }

// Close implements Proxy.
func (s *Stub) Close() error {
	if s.closed.CompareAndSwap(false, true) {
		s.rt.ForgetProxy(s.target())
	}
	return nil
}
