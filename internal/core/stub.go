package core

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/obs"
	"repro/internal/wire"
)

// StubFactory builds stub proxies: the minimal proxy, equivalent to
// classic RPC stub code. Every invocation marshals its arguments, crosses
// to the server under reliable request/reply, and unmarshals the results.
// It is the runtime's default factory and the baseline every smart proxy
// is measured against.
type StubFactory struct{}

// New implements ProxyFactory.
func (StubFactory) New(rt *Runtime, ref codec.Ref) (Proxy, error) {
	return NewStub(rt, ref), nil
}

// Stub is the forwarding proxy. It tracks migration forwards: if a call
// answers with KindForward, the stub rebinds to the object's new location
// and retries transparently (location transparency across migration).
type Stub struct {
	rt     *Runtime
	closed atomic.Bool

	mu  sync.Mutex
	ref codec.Ref

	calls    atomic.Uint64
	forwards atomic.Uint64
}

// NewStub builds a stub proxy without going through the factory registry
// (proxy implementations embed stubs for their write paths).
func NewStub(rt *Runtime, ref codec.Ref) *Stub {
	return &Stub{rt: rt, ref: ref}
}

// Invoke implements Proxy. When the caller's ctx carries a trace (opened
// via obs.Tracer.StartSpan, e.g. by proxyctl -trace), the stub records an
// invoke span and the request payload carries the span in its trace
// header for the server side to parent under. Untraced invocations skip
// tracing entirely — the hot path stays a single context lookup.
func (s *Stub) Invoke(ctx context.Context, method string, args ...any) ([]any, error) {
	if s.closed.Load() {
		return nil, ErrProxyClosed
	}
	s.calls.Add(1)
	s.rt.invokeCalls.Inc()
	ctx, finish := s.rt.Tracer().StartChild(ctx, "invoke:"+method, s.rt.where)
	res, err := s.invoke(ctx, method, args)
	finish(err)
	return res, err
}

func (s *Stub) invoke(ctx context.Context, method string, args []any) ([]any, error) {
	sc, _ := obs.SpanFromContext(ctx)
	lowered, err := s.rt.encodeOutbound(args)
	if err != nil {
		return nil, &InvokeError{Code: CodeInternal, Method: method, Msg: err.Error()}
	}
	payload, err := EncodeRequestTraced(s.Ref().Cap, method, lowered, sc)
	if err != nil {
		return nil, &InvokeError{Code: CodeInternal, Method: method, Msg: err.Error()}
	}

	// Follow forwarding responses a bounded number of times: an object in
	// the middle of a migration storm must not loop us forever. The bound
	// comfortably exceeds any realistic tombstone chain (E9 sweeps to 32).
	const maxForwards = 64
	for hop := 0; ; hop++ {
		hopStart := time.Now()
		resp, err := s.rt.Client().CallFrame(ctx, s.target(), wire.KindRequest, payload)
		if err != nil {
			return nil, RemoteToInvokeError(method, err)
		}
		switch resp.Kind {
		case wire.KindForward:
			if hop >= maxForwards {
				return nil, &InvokeError{Code: CodeUnavailable, Method: method, Msg: "forwarding chain too long"}
			}
			newRef, err := DecodeForward(resp.Payload)
			if err != nil {
				return nil, &InvokeError{Code: CodeInternal, Method: method, Msg: err.Error()}
			}
			s.Rebind(newRef)
			s.forwards.Add(1)
			s.rt.invokeForwards.Inc()
			if tr := s.rt.Tracer(); sc.Trace != 0 {
				tr.Record(obs.Span{
					Trace: sc.Trace, ID: tr.NewSpanID(), Parent: sc.Span,
					Name: "forward:" + newRef.Target.String(), Where: s.rt.where,
					Start: hopStart, Dur: time.Since(hopStart),
				})
			}
			continue
		default:
			return DecodeResults(s.rt.decoder(), resp.Payload)
		}
	}
}

// Ref implements Proxy.
func (s *Stub) Ref() codec.Ref {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ref
}

func (s *Stub) target() wire.ObjAddr {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ref.Target
}

// Rebind points the stub at a new location (migration support).
func (s *Stub) Rebind(newRef codec.Ref) {
	s.mu.Lock()
	old := s.ref.Target
	s.ref = newRef
	s.mu.Unlock()
	if old != newRef.Target {
		s.rt.ForgetProxy(old)
	}
}

// Stats reports how many invocations and forward-rebinds this stub served.
func (s *Stub) Stats() (calls, forwards uint64) {
	return s.calls.Load(), s.forwards.Load()
}

// Close implements Proxy.
func (s *Stub) Close() error {
	if s.closed.CompareAndSwap(false, true) {
		s.rt.ForgetProxy(s.target())
	}
	return nil
}
