// Package core implements the paper's primary contribution: the proxy
// principle. A client never holds a raw remote reference — every service is
// reached through a local proxy installed in the client's context, and the
// proxy implementation is chosen by the *service* (via its registered
// ProxyFactory), so the protocol between a proxy and its server is private
// to the service. References that cross a context boundary in invocation
// arguments or results are transparently converted: outbound, a proxy or
// exportable service becomes a capability tuple (codec.Ref); inbound, a Ref
// becomes a freshly installed proxy.
//
// Proxy kinds provided by this repository:
//
//   - stub (this package): pure forwarding over reliable RPC — the minimal
//     proxy, equivalent to classic stub code;
//   - bypass (this package): direct call on a co-located object, no
//     marshalling at all;
//   - batching (this package): queues one-way invocations and flushes them
//     in a single frame;
//   - caching (internal/cache): serves reads from a coherent local copy;
//   - replicated (internal/replica): reads any replica, writes through the
//     primary;
//   - migratory (internal/migrate): moves the object toward its caller.
package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/codec"
	"repro/internal/wire"
)

// Service is an object implementation hosted in some context. Invocation
// is dynamic — method name plus decoded arguments — which is what lets one
// generic proxy layer serve every service type without generated code.
// Implementations must be safe for concurrent invocations.
type Service interface {
	Invoke(ctx context.Context, method string, args []any) ([]any, error)
}

// ServiceFunc adapts a function to Service.
type ServiceFunc func(ctx context.Context, method string, args []any) ([]any, error)

// Invoke implements Service.
func (fn ServiceFunc) Invoke(ctx context.Context, method string, args []any) ([]any, error) {
	return fn(ctx, method, args)
}

// Proxy is the client-side representative of a service: the only way a
// client interacts with anything outside its own context. Close releases
// proxy-local resources (caches, leases); the remote object is unaffected.
type Proxy interface {
	Invoke(ctx context.Context, method string, args ...any) ([]any, error)
	Ref() codec.Ref
	Close() error
}

// ProxyFactory is the complete distribution strategy for a service type:
// one object that owns both halves of the proxy relationship. The factory
// is registered by the service (under its type name), which is how the
// service — not the client — chooses its strategy.
//
// New builds the client-side proxy when a reference of the factory's type
// is imported.
//
// Export is the server side of the same strategy: it may wrap the service
// with coordination logic (a cache coordinator tracking copies, a replica
// primary ordering writes, a shard router) and produce the private hint
// blob embedded in every exported reference. The partially-built reference
// passed in carries the export's target address and capability token (its
// Hint is filled from this call's return). Factories with no server side
// return (nil, nil, nil): the service is exported unwrapped with a nil
// hint (NopExport is that answer, ready to embed).
type ProxyFactory interface {
	New(rt *Runtime, ref codec.Ref) (Proxy, error)
	Export(rt *Runtime, svc Service, ref codec.Ref) (wrapped Service, hint []byte, err error)
}

// NopExport is the Export half for purely client-side factories (stub,
// batching): no wrapping, no hint. Embed it to satisfy ProxyFactory.
type NopExport struct{}

// Export implements the server half of ProxyFactory as a no-op.
func (NopExport) Export(*Runtime, Service, codec.Ref) (Service, []byte, error) {
	return nil, nil, nil
}

// Exportable is implemented by services that may be passed by reference in
// invocation arguments or results without having been exported explicitly:
// the runtime auto-exports them under the returned proxy type name.
type Exportable interface {
	Service
	ProxyType() string
}

// Errors returned by the core layer.
var (
	// ErrNoFactory reports an import whose type has no registered factory
	// and for which the runtime has no default factory.
	ErrNoFactory = errors.New("core: no proxy factory for type")
	// ErrNotExported reports an operation on a service that is not
	// exported from this runtime.
	ErrNotExported = errors.New("core: service not exported")
	// ErrProxyClosed reports an invocation through a closed proxy.
	ErrProxyClosed = errors.New("core: proxy closed")
	// ErrCircuitOpen reports a call rejected without transmission because
	// the destination's circuit breaker is open (the node is believed
	// down). The call was definitely not sent, so retrying elsewhere is
	// always safe.
	ErrCircuitOpen = errors.New("core: circuit open")
)

// InvokeError is an application-level invocation failure, propagated from
// the service to the caller with a stable code.
type InvokeError struct {
	Code   Code
	Method string
	Msg    string
}

// Code classifies invocation failures.
type Code int64

// Invocation failure codes.
const (
	// CodeApp is an error returned by the service implementation itself.
	CodeApp Code = 1
	// CodeNoSuchMethod reports an unknown method name.
	CodeNoSuchMethod Code = 2
	// CodeBadArgs reports arguments the method could not accept.
	CodeBadArgs Code = 3
	// CodeInternal reports a marshalling or dispatch failure in the layer
	// itself.
	CodeInternal Code = 4
	// CodeUnavailable reports that the target object is (possibly
	// temporarily) unreachable, e.g. mid-migration.
	CodeUnavailable Code = 5
	// CodeDenied reports an invocation that did not present the protected
	// export's capability token.
	CodeDenied Code = 6
	// CodeFenced reports a request carrying a stale epoch: the sender was
	// deposed (e.g. an old replica-group primary after promotion) and must
	// not treat the operation as performed. Unlike CodeUnavailable this is
	// a permanent verdict on the sender's authority, not the target's
	// reachability, so it is never retried or failed over.
	CodeFenced Code = 7
	// CodeMisroute reports a single-key invocation delivered to a shard
	// that does not own the key (the sender's routing table is stale).
	// Unlike CodeUnavailable the object is healthy — the caller should
	// refresh its table and re-route, not retry the same binding.
	CodeMisroute Code = 8
	// CodeOverload reports a request shed by the destination's admission
	// controller before it reached the service: the node is up but
	// saturated, and the invocation provably never executed. The caller
	// should back off (the error text carries the node's retry-after
	// hint), fail over, or degrade (a cache proxy serves stale within
	// its staleness window). Unlike CodeUnavailable this is a fast,
	// deliberate refusal, not a timeout.
	CodeOverload Code = 9
	// CodeSessionExpired reports a session-stamped retry that arrived
	// after the server's dedup table evicted the session: whether the
	// original invocation executed is unknowable, so the server refuses
	// to re-apply and the caller must fail loudly (surface the error,
	// never fail over — an alternate binding knows even less). The value
	// is mirrored by internal/session.ExpiredPayload, which cannot
	// import this package.
	CodeSessionExpired Code = 10
)

// String names the code.
func (c Code) String() string {
	switch c {
	case CodeApp:
		return "app"
	case CodeNoSuchMethod:
		return "no-such-method"
	case CodeBadArgs:
		return "bad-args"
	case CodeInternal:
		return "internal"
	case CodeUnavailable:
		return "unavailable"
	case CodeDenied:
		return "denied"
	case CodeFenced:
		return "fenced"
	case CodeMisroute:
		return "misroute"
	case CodeOverload:
		return "overload"
	case CodeSessionExpired:
		return "session-expired"
	default:
		return fmt.Sprintf("code(%d)", int64(c))
	}
}

// Error implements error.
func (e *InvokeError) Error() string {
	return fmt.Sprintf("core: %s invoking %q: %s", e.Code, e.Method, e.Msg)
}

// Errorf builds an application-level InvokeError.
func Errorf(code Code, method, format string, args ...any) *InvokeError {
	return &InvokeError{Code: code, Method: method, Msg: fmt.Sprintf(format, args...)}
}

// NoSuchMethod is the conventional error for unknown methods, used by
// service implementations.
func NoSuchMethod(method string) *InvokeError {
	return &InvokeError{Code: CodeNoSuchMethod, Method: method, Msg: "unknown method"}
}

// BadArgs is the conventional error for malformed arguments.
func BadArgs(method, detail string) *InvokeError {
	return &InvokeError{Code: CodeBadArgs, Method: method, Msg: detail}
}

type callerKey struct{}

// WithCaller annotates ctx with the invoking context's address; the server
// dispatch path applies it before calling the service.
func WithCaller(ctx context.Context, from wire.Addr) context.Context {
	return context.WithValue(ctx, callerKey{}, from)
}

// CallerFrom reports the address of the context that issued the current
// invocation, when called from inside a Service.Invoke.
func CallerFrom(ctx context.Context) (wire.Addr, bool) {
	a, ok := ctx.Value(callerKey{}).(wire.Addr)
	return a, ok
}
