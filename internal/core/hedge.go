package core

import (
	"context"
	"time"

	"repro/internal/codec"
	"repro/internal/obs"
	"repro/internal/overload"
)

// Hedged reads. A request whose latency lands in the tail is usually
// slow for a reason local to one server — a GC pause, a queue behind a
// heavy request, a flaky link — so issuing a second copy to an
// *alternate* binding after waiting roughly the p95 latency converts
// the tail into the alternate's median. The races are first-wins: the
// loser's ctx is cancelled the moment either attempt succeeds, and the
// deadline header makes the abandoned server stop working on it.
//
// Hedging re-executes requests by design, so it rides the same
// idempotency licensing as failover replay (Runtime.RegisterIdempotent,
// Stub.SetIdempotent, WithIdempotent): a method nobody declared
// replay-safe is never hedged. And because a hedge *adds* load, it is
// the wrong reflex under overload — the delay tracker only shortens the
// hedge delay when observed latency is genuinely low, and a shed
// (CodeOverload) answer from the alternate simply loses the race.

// HedgeConfig tunes hedged reads for a runtime.
type HedgeConfig struct {
	// MinDelay floors the hedge delay: even if observed p95 collapses,
	// the second attempt never launches sooner than this. Default 1ms.
	MinDelay time.Duration
	// MaxDelay caps the hedge delay (a latency spike must not push the
	// hedge past the caller's patience). Default 100×MinDelay.
	MaxDelay time.Duration
}

// WithHedging enables hedged reads on every stub the runtime builds:
// idempotent invocations with a known alternate binding race a delayed
// second attempt against the first, first success wins. The delay
// adapts to the observed p95 invocation latency, clamped to the
// configured bounds.
func WithHedging(cfg HedgeConfig) RuntimeOption {
	return func(rt *Runtime) { rt.hedgeCfg = &cfg }
}

// hedgeState is the runtime-wide hedging machinery: one shared delay
// tracker (all stubs feed it, so the p95 estimate converges fast) and
// the counters E15 reads.
type hedgeState struct {
	tracker  *overload.DelayTracker
	launches *obs.Counter // hedge attempts actually launched
	wins     *obs.Counter // races the hedged attempt won
}

// hedgePair reports the binding pair a hedged invocation would race:
// the current binding and the distinct alternate whose node carries the
// lowest gray-failure score (first-listed wins ties, so without a
// monitor this is the first distinct alternate, as before). If the
// current binding itself is strongly degraded and the alternate scores
// better, the pair is swapped — the healthy binding leads and the
// degraded one becomes the delayed hedge, a pre-send ejection in hedged
// form. No distinct alternate → no hedge (racing a binding against
// itself just doubles load on the slow server).
func (s *Stub) hedgePair() (ref, alt codec.Ref, ok bool) {
	s.mu.Lock()
	ref = s.ref
	alts := append([]codec.Ref(nil), s.alts...)
	s.mu.Unlock()
	var best codec.Ref
	bestScore, found := 0.0, false
	for _, a := range alts {
		if a.Target == ref.Target {
			continue
		}
		if sc := s.rt.HealthScore(a.Target.Addr.Node); !found || sc < bestScore {
			best, bestScore, found = a, sc, true
		}
	}
	if !found {
		return ref, codec.Ref{}, false
	}
	if cur := s.rt.HealthScore(ref.Target.Addr.Node); cur >= degradePressureScore && bestScore < cur {
		return best, ref, true
	}
	return ref, best, true
}

// invokeHedged runs one invocation as a first-wins race: the primary
// attempt starts immediately; if it has not answered after the tracked
// p95 delay (or fails in a provably-not-executed way sooner), a second
// attempt goes to the alternate. The first success cancels the other
// attempt's ctx. Both attempts run through callBinding, so forwards,
// breakers, and health evidence work exactly as in the sequential path.
func (s *Stub) invokeHedged(ctx context.Context, method string, lowered []any, ref, alt codec.Ref) ([]any, error) {
	h := s.rt.hedge
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type attempt struct {
		res    []any
		err    error
		dur    time.Duration
		hedged bool
	}
	ch := make(chan attempt, 2)
	run := func(r codec.Ref, hedged bool) {
		start := time.Now()
		res, err := s.callBinding(hctx, r, method, lowered)
		ch <- attempt{res: res, err: err, dur: time.Since(start), hedged: hedged}
	}
	go run(ref, false)

	timer := time.NewTimer(h.tracker.Delay())
	defer timer.Stop()
	launch := func() {
		h.launches.Inc()
		if sc, traced := obs.SpanFromContext(ctx); traced {
			tr := s.rt.Tracer()
			tr.Record(obs.Span{
				Trace: sc.Trace, ID: tr.NewSpanID(), Parent: sc.Span,
				Name: "hedge:" + alt.Target.String(), Where: s.rt.where,
				Start: time.Now(),
			})
		}
		go run(alt, true)
	}

	launched := false
	pending := 1
	var firstErr error
	for {
		select {
		case <-timer.C:
			if !launched {
				launched = true
				pending++
				launch()
			}
		case a := <-ch:
			pending--
			if a.err == nil {
				h.tracker.Observe(a.dur)
				if a.hedged && launched {
					h.wins.Inc()
				}
				cancel()
				return a.res, nil
			}
			if ctx.Err() != nil {
				return nil, stubError(method, a.err)
			}
			if firstErr == nil {
				firstErr = a.err
			}
			if !launched {
				// The primary failed before the hedge fired. A failure that
				// proves the request never executed turns the hedge into an
				// immediate failover; a real answer ends the invocation.
				if classifyFailure(a.err) == foNone {
					return nil, stubError(method, a.err)
				}
				launched = true
				pending++
				launch()
				continue
			}
			if pending == 0 {
				return nil, stubError(method, firstErr)
			}
		}
	}
}
