package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// logService records appended lines; append is one-way batchable, read is
// synchronous.
type logService struct {
	mu    sync.Mutex
	lines []string
}

func (s *logService) Invoke(ctx context.Context, method string, args []any) ([]any, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch method {
	case "append":
		line, _ := args[0].(string)
		if line == "poison" {
			return nil, Errorf(CodeApp, method, "poisoned line")
		}
		s.lines = append(s.lines, line)
		return nil, nil
	case "count":
		return []any{int64(len(s.lines))}, nil
	case "all":
		out := make([]any, len(s.lines))
		for i, l := range s.lines {
			out[i] = l
		}
		return []any{out}, nil
	default:
		return nil, NoSuchMethod(method)
	}
}

func (s *logService) snapshot() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.lines...)
}

func batchWorld(t *testing.T, opts ...BatchOption) (*logService, *BatchProxy) {
	t.Helper()
	w := newWorld(t, 2)
	factory := NewBatchFactory([]string{"append"}, opts...)
	w.runtimes[1].RegisterProxyType("Log", factory)
	svc := &logService{}
	ref, err := w.runtimes[0].Export(svc, "Log")
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.runtimes[1].Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	bp, ok := p.(*BatchProxy)
	if !ok {
		t.Fatalf("import produced %T", p)
	}
	return svc, bp
}

func TestBatchQueuesUntilSize(t *testing.T) {
	svc, p := batchWorld(t, WithBatchSize(4), WithBatchInterval(0))
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := p.Invoke(ctx, "append", "x"); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(svc.snapshot()); got != 0 {
		t.Fatalf("server saw %d lines before the batch filled", got)
	}
	if p.Pending() != 3 {
		t.Fatalf("pending = %d", p.Pending())
	}
	// Fourth append fills the batch and flushes synchronously.
	if _, err := p.Invoke(ctx, "append", "x"); err != nil {
		t.Fatal(err)
	}
	if got := len(svc.snapshot()); got != 4 {
		t.Errorf("server saw %d lines after flush, want 4", got)
	}
	if queued, flushes := p.Stats(); queued != 4 || flushes != 1 {
		t.Errorf("stats = %d queued, %d flushes", queued, flushes)
	}
}

func TestBatchPreservesOrder(t *testing.T) {
	svc, p := batchWorld(t, WithBatchSize(100), WithBatchInterval(0))
	ctx := context.Background()
	want := []string{"a", "b", "c", "d", "e"}
	for _, l := range want {
		if _, err := p.Invoke(ctx, "append", l); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	got := svc.snapshot()
	if len(got) != len(want) {
		t.Fatalf("lines = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order broken: %v", got)
		}
	}
}

func TestSyncMethodFlushesFirst(t *testing.T) {
	// A synchronous method must observe every queued one-way before it —
	// program order is preserved across the batch boundary.
	_, p := batchWorld(t, WithBatchSize(100), WithBatchInterval(0))
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := p.Invoke(ctx, "append", "x"); err != nil {
			t.Fatal(err)
		}
	}
	res, err := p.Invoke(ctx, "count")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != int64(5) {
		t.Errorf("count = %v, want 5 (flush-before-sync violated)", res[0])
	}
	if p.Pending() != 0 {
		t.Errorf("pending after sync = %d", p.Pending())
	}
}

func TestBatchIntervalFlushes(t *testing.T) {
	svc, p := batchWorld(t, WithBatchSize(1000), WithBatchInterval(20*time.Millisecond))
	if _, err := p.Invoke(context.Background(), "append", "timed"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(svc.snapshot()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval flush never happened")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestBatchErrorSurfacesOnFlush(t *testing.T) {
	svc, p := batchWorld(t, WithBatchSize(100), WithBatchInterval(0))
	ctx := context.Background()
	for _, l := range []string{"ok", "poison", "after"} {
		if _, err := p.Invoke(ctx, "append", l); err != nil {
			t.Fatal(err)
		}
	}
	err := p.Flush(ctx)
	var ie *InvokeError
	if !errors.As(err, &ie) {
		t.Fatalf("flush error = %v", err)
	}
	// The batch aborts at the poisoned element.
	got := svc.snapshot()
	if len(got) != 1 || got[0] != "ok" {
		t.Errorf("server lines = %v", got)
	}
}

func TestBatchCloseFlushes(t *testing.T) {
	svc, p := batchWorld(t, WithBatchSize(100), WithBatchInterval(0))
	ctx := context.Background()
	if _, err := p.Invoke(ctx, "append", "last words"); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if got := svc.snapshot(); len(got) != 1 {
		t.Errorf("lines after close = %v", got)
	}
	if _, err := p.Invoke(ctx, "append", "too late"); !errors.Is(err, ErrProxyClosed) {
		t.Errorf("invoke after close = %v", err)
	}
}

func TestBatchAmortizesFrames(t *testing.T) {
	// The point of the design: n one-ways cost ~n/batchSize frames.
	w := newWorld(t, 2)
	factory := NewBatchFactory([]string{"append"}, WithBatchSize(10), WithBatchInterval(0))
	w.runtimes[1].RegisterProxyType("Log", factory)
	svc := &logService{}
	ref, err := w.runtimes[0].Export(svc, "Log")
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.runtimes[1].Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	before := w.net.Snapshot().Sent
	ctx := context.Background()
	for i := 0; i < 100; i++ {
		if _, err := p.Invoke(ctx, "append", "x"); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.(*BatchProxy).Flush(ctx); err != nil {
		t.Fatal(err)
	}
	frames := w.net.Snapshot().Sent - before
	// 10 batches → 10 request + 10 reply frames (plus nothing else).
	if frames > 25 {
		t.Errorf("100 one-ways used %d frames; batching is not amortizing", frames)
	}
	if got := len(svc.snapshot()); got != 100 {
		t.Errorf("server saw %d lines", got)
	}
}
