package core

import (
	"context"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// Deadline propagation. A client with a ctx deadline has a shrinking
// budget; work a server performs after that budget expires is wasted —
// nobody awaits the reply. So the remaining budget rides the request
// payload as a small header next to the trace header, and servers derive
// their handler ctx from it, cancelling abandoned work.
//
// The budget is relative (a duration, not an absolute time), so it is
// immune to clock skew between nodes; the cost is that delay the header
// cannot see does not count against it — queueing delay before the
// server applies the budget. Retransmit delay, by contrast, IS counted:
// the header is encoded first in the payload (AppendCtxHeaders), and the
// rpc layer re-encodes the shrunken remaining budget before every
// retransmission, so a request that spent several retries in flight
// presents its current budget, not its original one. What slack remains
// errs on the side of the server doing slightly too much work rather
// than cancelling live calls — the client's own ctx still bounds what it
// will wait for.
//
// The wire format and magic byte live in wire/deadline.go (the rpc layer
// rewrites the header and cannot import core); this file keeps the
// policy: which ctx values become headers, and how servers apply them.

// AppendDeadlineHeader prefixes dst with the wire form of a remaining
// budget: [magic, uvarint nanoseconds]. Non-positive budgets append
// nothing (an already-expired call fails client-side anyway).
func AppendDeadlineHeader(dst []byte, budget time.Duration) []byte {
	return wire.AppendDeadlineHeader(dst, budget)
}

// SplitDeadlineHeader strips a leading deadline header, returning the
// budget it carried (zero if absent) and the rest of the payload.
func SplitDeadlineHeader(payload []byte) (time.Duration, []byte) {
	return wire.SplitDeadlineHeader(payload)
}

// AppendCtxHeaders prefixes dst with every header the ctx implies: the
// remaining deadline budget (if the ctx has a deadline) and the trace
// span (if the ctx carries one). This is what proxies call when building
// a request payload.
func AppendCtxHeaders(dst []byte, ctx context.Context) []byte {
	if dl, ok := ctx.Deadline(); ok {
		dst = AppendDeadlineHeader(dst, time.Until(dl))
	}
	sc, _ := obs.SpanFromContext(ctx)
	return obs.AppendSpanHeader(dst, sc)
}

// SplitHeaders strips any combination of deadline and trace headers from
// the front of a request payload, in either order, returning what each
// carried (zero values when absent) and the bare request body.
func SplitHeaders(payload []byte) (sc obs.SpanContext, budget time.Duration, body []byte) {
	body = payload
	for {
		if b, rest := SplitDeadlineHeader(body); len(rest) != len(body) {
			budget, body = b, rest
			continue
		}
		if s, rest := obs.SplitSpanHeader(body); len(rest) != len(body) {
			sc, body = s, rest
			continue
		}
		return sc, budget, body
	}
}

// ApplyBudget derives a server-side ctx from a propagated budget: with a
// positive budget the ctx expires when the client's will; with none the
// ctx is returned unchanged. The CancelFunc is never nil.
func ApplyBudget(ctx context.Context, budget time.Duration) (context.Context, context.CancelFunc) {
	if budget <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, budget)
}

// idemCtxKey marks a ctx whose invocations the caller declares idempotent,
// licensing failover replay even when an attempt may have executed.
type idemCtxKey struct{}

// WithIdempotent marks every invocation under ctx as safe to replay
// against an alternate binding: re-executing it yields the same outcome.
// This is the per-call complement of Runtime.RegisterIdempotent.
func WithIdempotent(ctx context.Context) context.Context {
	return context.WithValue(ctx, idemCtxKey{}, true)
}

// IdempotentFrom reports whether ctx was marked by WithIdempotent.
func IdempotentFrom(ctx context.Context) bool {
	v, _ := ctx.Value(idemCtxKey{}).(bool)
	return v
}
