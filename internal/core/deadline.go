package core

import (
	"context"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// Deadline propagation. A client with a ctx deadline has a shrinking
// budget; work a server performs after that budget expires is wasted —
// nobody awaits the reply. So the remaining budget rides the request
// payload as a small header next to the trace header, and servers derive
// their handler ctx from it, cancelling abandoned work.
//
// The budget is relative (a duration, not an absolute time), so it is
// immune to clock skew between nodes; the cost is that delay the header
// cannot see does not count against it — queueing delay before the
// server applies the budget. Retransmit delay, by contrast, IS counted:
// the header is encoded first in the payload (AppendCtxHeaders), and the
// rpc layer re-encodes the shrunken remaining budget before every
// retransmission, so a request that spent several retries in flight
// presents its current budget, not its original one. What slack remains
// errs on the side of the server doing slightly too much work rather
// than cancelling live calls — the client's own ctx still bounds what it
// will wait for.
//
// The wire format and magic byte live in wire/deadline.go (the rpc layer
// rewrites the header and cannot import core); this file keeps the
// policy: which ctx values become headers, and how servers apply them.

// AppendDeadlineHeader prefixes dst with the wire form of a remaining
// budget: [magic, uvarint nanoseconds]. Non-positive budgets append
// nothing (an already-expired call fails client-side anyway).
func AppendDeadlineHeader(dst []byte, budget time.Duration) []byte {
	return wire.AppendDeadlineHeader(dst, budget)
}

// SplitDeadlineHeader strips a leading deadline header, returning the
// budget it carried (zero if absent) and the rest of the payload.
func SplitDeadlineHeader(payload []byte) (time.Duration, []byte) {
	return wire.SplitDeadlineHeader(payload)
}

// AppendCtxHeaders prefixes dst with every header the ctx implies: the
// request's priority class (if the ctx carries a non-normal one, via
// WithPriority), the session identity (if the ctx carries one, via
// ContextWithSession), the remaining deadline budget (if the ctx has a
// deadline) and the trace span (if the ctx carries one). This is what
// proxies call when building a request payload. The priority header goes
// first: the receiving kernel classifies a frame for admission by
// peeking at payload[0] only. The session header precedes the deadline
// header so the rpc layer's per-retransmit deadline rewrite never has to
// move it.
func AppendCtxHeaders(dst []byte, ctx context.Context) []byte {
	dst = wire.AppendPriorityHeader(dst, PriorityFrom(ctx))
	sid, seq := SessionFromContext(ctx)
	dst = wire.AppendSessionHeader(dst, sid, seq)
	if dl, ok := ctx.Deadline(); ok {
		dst = AppendDeadlineHeader(dst, time.Until(dl))
	}
	sc, _ := obs.SpanFromContext(ctx)
	return obs.AppendSpanHeader(dst, sc)
}

// SplitHeaders strips any combination of priority, session, deadline,
// and trace headers from the front of a request payload, in any order,
// returning what the deadline and trace headers carried (zero values
// when absent) and the bare request body. The priority header was
// consumed by the kernel's admission decision, and the session header by
// its dedup consult (wire.PeekSession); servers above them recover the
// session identity from ctx, not the payload.
func SplitHeaders(payload []byte) (sc obs.SpanContext, budget time.Duration, body []byte) {
	body = payload
	for {
		if _, rest := wire.SplitPriorityHeader(body); len(rest) != len(body) {
			body = rest
			continue
		}
		if _, _, rest := wire.SplitSessionHeader(body); len(rest) != len(body) {
			body = rest
			continue
		}
		if b, rest := SplitDeadlineHeader(body); len(rest) != len(body) {
			budget, body = b, rest
			continue
		}
		if s, rest := obs.SplitSpanHeader(body); len(rest) != len(body) {
			sc, body = s, rest
			continue
		}
		return sc, budget, body
	}
}

// ApplyBudget derives a server-side ctx from a propagated budget: with a
// positive budget the ctx expires when the client's will; with none the
// ctx is returned unchanged. The CancelFunc is never nil.
func ApplyBudget(ctx context.Context, budget time.Duration) (context.Context, context.CancelFunc) {
	if budget <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, budget)
}

// priCtxKey marks a ctx with the admission-priority class its
// invocations travel in.
type priCtxKey struct{}

// WithPriority marks every invocation under ctx with an admission
// priority class: the request payload carries it in a leading priority
// header (wire.PriorityMagic), and overloaded servers shed low before
// normal and never shed high. System traffic the mesh depends on —
// replica syncs, shard rebalance steps — stamps wire.PriorityHigh;
// bulk best-effort work may stamp wire.PriorityLow.
func WithPriority(ctx context.Context, p wire.Priority) context.Context {
	if p == wire.PriorityNormal {
		return ctx
	}
	return context.WithValue(ctx, priCtxKey{}, p)
}

// PriorityFrom reports the admission class ctx was marked with
// (wire.PriorityNormal when unmarked).
func PriorityFrom(ctx context.Context) wire.Priority {
	p, _ := ctx.Value(priCtxKey{}).(wire.Priority)
	return p
}

// idemCtxKey marks a ctx whose invocations the caller declares idempotent,
// licensing failover replay even when an attempt may have executed.
type idemCtxKey struct{}

// WithIdempotent marks every invocation under ctx as safe to replay
// against an alternate binding: re-executing it yields the same outcome.
// This is the per-call complement of Runtime.RegisterIdempotent.
func WithIdempotent(ctx context.Context) context.Context {
	return context.WithValue(ctx, idemCtxKey{}, true)
}

// IdempotentFrom reports whether ctx was marked by WithIdempotent.
func IdempotentFrom(ctx context.Context) bool {
	v, _ := ctx.Value(idemCtxKey{}).(bool)
	return v
}
