package core

import (
	"context"
	"fmt"

	"repro/internal/codec"
)

// Typed invocation helpers. Invocation is dynamic ([]any in, []any out);
// these generics put a typed face on it for application code, converting
// results with the codec's lenient assignment rules (any decoded integer
// fits any integer type it doesn't overflow, lists fit slices, structs fit
// structs by field name).

// Call0 invokes a method expecting no results.
func Call0(ctx context.Context, p Proxy, method string, args ...any) error {
	_, err := p.Invoke(ctx, method, args...)
	return err
}

// Call1 invokes a method expecting exactly one result of type T.
func Call1[T any](ctx context.Context, p Proxy, method string, args ...any) (T, error) {
	var zero T
	res, err := p.Invoke(ctx, method, args...)
	if err != nil {
		return zero, err
	}
	if len(res) != 1 {
		return zero, &InvokeError{Code: CodeInternal, Method: method,
			Msg: fmt.Sprintf("want 1 result, got %d", len(res))}
	}
	out, err := convertResult[T](method, res[0])
	if err != nil {
		return zero, err
	}
	return out, nil
}

// Call2 invokes a method expecting exactly two results.
func Call2[T1, T2 any](ctx context.Context, p Proxy, method string, args ...any) (T1, T2, error) {
	var z1 T1
	var z2 T2
	res, err := p.Invoke(ctx, method, args...)
	if err != nil {
		return z1, z2, err
	}
	if len(res) != 2 {
		return z1, z2, &InvokeError{Code: CodeInternal, Method: method,
			Msg: fmt.Sprintf("want 2 results, got %d", len(res))}
	}
	o1, err := convertResult[T1](method, res[0])
	if err != nil {
		return z1, z2, err
	}
	o2, err := convertResult[T2](method, res[1])
	if err != nil {
		return z1, z2, err
	}
	return o1, o2, nil
}

// convertResult coerces one dynamic result into T: exact type matches
// (including interfaces like Proxy) pass through; everything else goes
// through the codec's assignment rules.
func convertResult[T any](method string, v any) (T, error) {
	var zero T
	if t, ok := v.(T); ok {
		return t, nil
	}
	var out T
	if err := codec.Assign(v, &out); err != nil {
		return zero, &InvokeError{Code: CodeInternal, Method: method,
			Msg: fmt.Sprintf("result conversion: %v", err)}
	}
	return out, nil
}
