package core

import (
	"context"

	"repro/internal/session"
)

// Session propagation. When a runtime is built with WithSessions, its
// stubs mint one (session id, sequence) identity per logical invocation
// of a non-idempotent method and stamp it on the request payload (the
// 0xF8 header, wire/session.go). The identity is allocated ONCE, before
// the failover loop: every retransmission and every alternate binding
// presents the same pair, so a server-side dedup table recognizes the
// retry however it arrives. Idempotent methods (RegisterIdempotent /
// WithIdempotent) skip the stamp entirely — re-execution is harmless by
// declaration, so caching their replies would be pure overhead; the
// licensing survives as exactly that optimization hint.

// WithSessions equips the runtime with a session minter: its stubs stamp
// non-idempotent invocations with exactly-once identities, and failover
// may replay them even when an attempt may have executed (the server's
// dedup table, not the client's caution, prevents double-apply). Off by
// default — a stamped request only helps against dedup-aware servers,
// and deployments opt in per node (proxyd -session-dedup).
func WithSessions() RuntimeOption {
	return func(rt *Runtime) { rt.sessions = session.NewMinter() }
}

// Sessions exposes the runtime's session minter; nil without
// WithSessions.
func (rt *Runtime) Sessions() *session.Minter { return rt.sessions }

// sessCtxKey carries one invocation's session identity.
type sessCtxKey struct{}

type sessID struct{ sid, seq uint64 }

// ContextWithSession stamps ctx with an invocation's exactly-once
// identity; AppendCtxHeaders encodes it as the 0xF8 session header.
// Layers that forward one logical invocation through an inner call path
// (the replica proxy's write path, the shard guard) use it to keep the
// identity attached.
func ContextWithSession(ctx context.Context, sid, seq uint64) context.Context {
	if sid == 0 {
		return ctx
	}
	return context.WithValue(ctx, sessCtxKey{}, sessID{sid, seq})
}

// SessionFromContext reports the session identity ctx carries (zeros
// when unstamped).
func SessionFromContext(ctx context.Context) (sid, seq uint64) {
	s, _ := ctx.Value(sessCtxKey{}).(sessID)
	return s.sid, s.seq
}
