package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/health"
	"repro/internal/kernel"
	"repro/internal/rpc"
	"repro/internal/wire"
)

// TestRetryBudgetFailureIsBreakerEvidenceOnce pins the breaker ×
// retry-budget interplay: a call that dies on ErrRetryBudget (it wraps
// ErrTooManyRetries) counts as exactly ONE transport failure toward the
// breaker — with threshold 3, the breaker must still be closed after two
// budget-denied calls and open only after the third. Double-counting
// (the isNodeFailure branch AND the probe fallback both reporting) would
// open it after two.
func TestRetryBudgetFailureIsBreakerEvidenceOnce(t *testing.T) {
	w := newFaultWorld(t, 2,
		[]rpc.ClientOption{rpc.WithRetryInterval(2 * time.Millisecond), rpc.WithMaxAttempts(10),
			rpc.WithRetryBudget(0.001, 0.5)}, // bucket can never reach a whole token
		WithBreakerConfig(health.BreakerConfig{Threshold: 3, Cooldown: 30 * time.Millisecond}))
	server, client := w.runtimes[0], w.runtimes[1]
	ref, err := server.Export(&counter{}, "Counter")
	if err != nil {
		t.Fatal(err)
	}
	p, err := client.Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	br := client.Breakers().For(ref.Target.Addr.Node)

	w.net.Crash(1)
	for i := 1; i <= 2; i++ {
		if _, err := p.Invoke(context.Background(), "get"); err == nil {
			t.Fatal("call to crashed node succeeded")
		}
		if st := br.State(); st != health.BreakerClosed {
			t.Fatalf("breaker %v after %d budget-denied calls, want closed until threshold 3", st, i)
		}
	}
	if _, err := p.Invoke(context.Background(), "get"); err == nil {
		t.Fatal("call to crashed node succeeded")
	}
	if st := br.State(); st != health.BreakerOpen {
		t.Fatalf("breaker %v after 3 failures, want open", st)
	}
}

// TestBudgetExhaustedProbeDoesNotWedgeRecovery drives the half-open
// interplay: while the breaker cools down, the destination's retry
// budget stays empty, so each probe dies fast on ErrRetryBudget. That
// must re-open the breaker (one failure, no wedge in half-open) — and
// once the node is back, the next probe's FIRST transmission succeeds
// without touching the budget, closing the breaker.
func TestBudgetExhaustedProbeDoesNotWedgeRecovery(t *testing.T) {
	w := newFaultWorld(t, 2,
		[]rpc.ClientOption{rpc.WithRetryInterval(2 * time.Millisecond), rpc.WithMaxAttempts(10),
			rpc.WithRetryBudget(0.001, 0.5)},
		WithBreakerConfig(health.BreakerConfig{Threshold: 1, Cooldown: 20 * time.Millisecond}))
	server, client := w.runtimes[0], w.runtimes[1]
	ref, err := server.Export(&counter{}, "Counter")
	if err != nil {
		t.Fatal(err)
	}
	p, err := client.Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	br := client.Breakers().For(ref.Target.Addr.Node)

	w.net.Crash(1)
	if _, err := p.Invoke(context.Background(), "get"); err == nil {
		t.Fatal("call to crashed node succeeded")
	}
	if st := br.State(); st != health.BreakerOpen {
		t.Fatalf("breaker %v after failure, want open", st)
	}

	// A budget-denied probe must snap the breaker back to open — not
	// leave it half-open awaiting evidence that cannot come.
	time.Sleep(30 * time.Millisecond)
	if _, err := p.Invoke(context.Background(), "get"); err == nil {
		t.Fatal("probe against crashed node succeeded")
	}
	if st := br.State(); st != health.BreakerOpen {
		t.Fatalf("breaker %v after failed probe, want open again", st)
	}

	// Node restarts; the empty budget must not block recovery, because a
	// probe that succeeds on its first transmission never spends a token.
	w.net.Restart(1)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := p.Invoke(context.Background(), "get"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never recovered: exhausted budget wedged the probe path")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := br.State(); st != health.BreakerClosed {
		t.Errorf("breaker %v after recovery, want closed", st)
	}
}

// slowSvc answers get() with its marker after a fixed service time.
type slowSvc struct {
	d      time.Duration
	marker int64
}

func (s *slowSvc) Invoke(ctx context.Context, method string, args []any) ([]any, error) {
	select {
	case <-time.After(s.d):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return []any{s.marker}, nil
}

func TestHedgedReadRacesAlternate(t *testing.T) {
	// Patient client: retransmissions must outlast the slow primary's
	// 400ms service time so the non-hedged path can complete.
	w := newFaultWorld(t, 3,
		[]rpc.ClientOption{rpc.WithRetryInterval(50 * time.Millisecond), rpc.WithMaxAttempts(20)},
		WithHedging(HedgeConfig{MinDelay: 5 * time.Millisecond}))
	primary, backup, client := w.runtimes[0], w.runtimes[1], w.runtimes[2]
	ref1, err := primary.Export(&slowSvc{d: 400 * time.Millisecond, marker: 1}, "Counter")
	if err != nil {
		t.Fatal(err)
	}
	ref2, err := backup.Export(&slowSvc{d: 0, marker: 2}, "Counter")
	if err != nil {
		t.Fatal(err)
	}
	client.RegisterIdempotent("Counter", "get")
	p, err := client.Import(ref1)
	if err != nil {
		t.Fatal(err)
	}
	stub := p.(*Stub)
	stub.SetAlternates([]codec.Ref{ref1, ref2})

	// The cold tracker's delay is the 5ms floor: the hedge fires long
	// before the 400ms primary answers, and the fast alternate wins.
	start := time.Now()
	res, err := stub.Invoke(context.Background(), "get")
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("hedged invoke: %v", err)
	}
	if res[0].(int64) != 2 {
		t.Errorf("result = %v, want the alternate's marker 2", res[0])
	}
	if elapsed > 200*time.Millisecond {
		t.Errorf("hedged read took %v; the hedge never fired", elapsed)
	}
	scope := "core[" + client.Addr().String() + "]."
	reg := client.Observer().Registry
	if reg.Counter(scope+"hedge.launches").Load() == 0 {
		t.Error("no hedge launch recorded")
	}
	if reg.Counter(scope+"hedge.wins").Load() == 0 {
		t.Error("no hedge win recorded")
	}
	// The win must NOT rebind the stub: the primary is slow, not down.
	if stub.Ref().Target != ref1.Target {
		t.Error("hedge win rebound the stub away from the primary")
	}

	// A method nobody declared idempotent is never hedged: it waits out
	// the slow primary.
	start = time.Now()
	if _, err := stub.Invoke(context.Background(), "put"); err != nil {
		t.Fatalf("non-idempotent invoke: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 350*time.Millisecond {
		t.Errorf("non-idempotent call returned in %v; it must not hedge", elapsed)
	}
}

// TestOverloadPushbackIsNotBreakerEvidence pins the other half of the
// evidence contract: a pushback (shed) response is an ANSWER — the node
// is alive, just busy — so it must never trip the breaker, however many
// arrive.
func TestOverloadPushbackIsNotBreakerEvidence(t *testing.T) {
	w := newFaultWorld(t, 2, fastClient(),
		WithBreakerConfig(health.BreakerConfig{Threshold: 1, Cooldown: time.Minute}))
	client := w.runtimes[1]

	// Synthesize pushback the way an overloaded kernel answers: the
	// server context replies KindError + FlagPushback below the proxy
	// layer, via a raw frame handler on the server's kernel context.
	srvKtx := w.runtimes[0].Kernel()
	obj := srvKtx.Register(kernel.HandlerFunc(func(ktx *kernel.Context, f *wire.Frame) {
		resp := wire.GetFrame()
		resp.Kind = wire.KindError
		resp.Flags = wire.FlagResponse | wire.FlagPushback
		resp.ReqID = f.ReqID
		resp.Dst = f.Src
		resp.Object = wire.KernelObject
		resp.Payload = wire.AppendPushback(resp.Payload[:0], 15*time.Millisecond)
		_ = ktx.Send(resp)
		resp.Release()
	}))
	dst := wire.ObjAddr{Addr: srvKtx.Addr(), Object: obj}

	br := client.Breakers().For(dst.Addr.Node)
	for i := 0; i < 5; i++ {
		_, err := client.GuardedCall(context.Background(), dst, wire.KindRequest, []byte("x"))
		var re *kernel.RemoteError
		if !errors.As(err, &re) || !re.Pushback {
			t.Fatalf("err = %v, want pushback RemoteError", err)
		}
		if re.RetryAfter != 15*time.Millisecond {
			t.Errorf("retry-after = %v, want 15ms", re.RetryAfter)
		}
		if !IsOverload(err) {
			t.Error("IsOverload missed a pushback error")
		}
	}
	if st := br.State(); st != health.BreakerClosed {
		t.Errorf("breaker %v after 5 pushbacks, want closed (overload is an answer, not a crash)", st)
	}
}
