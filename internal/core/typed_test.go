package core

import (
	"context"
	"errors"
	"testing"
)

// pairService returns typed pairs for the Call helpers.
type pairService struct{}

func (pairService) Invoke(ctx context.Context, method string, args []any) ([]any, error) {
	switch method {
	case "one":
		return []any{int64(42)}, nil
	case "two":
		return []any{"name", int64(7)}, nil
	case "none":
		return nil, nil
	case "list":
		return []any{[]any{int64(1), int64(2), int64(3)}}, nil
	case "boom":
		return nil, Errorf(CodeApp, method, "kaboom")
	default:
		return nil, NoSuchMethod(method)
	}
}

func typedProxy(t *testing.T) Proxy {
	t.Helper()
	w := newWorld(t, 2)
	ref, err := w.runtimes[0].Export(pairService{}, "Pairs")
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.runtimes[1].Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCall1Typed(t *testing.T) {
	p := typedProxy(t)
	ctx := context.Background()

	// Exact type.
	got, err := Call1[int64](ctx, p, "one")
	if err != nil || got != 42 {
		t.Errorf("Call1[int64] = %d, %v", got, err)
	}
	// Converted width.
	small, err := Call1[int](ctx, p, "one")
	if err != nil || small != 42 {
		t.Errorf("Call1[int] = %d, %v", small, err)
	}
	// Typed slice from a dynamic list.
	list, err := Call1[[]int64](ctx, p, "list")
	if err != nil || len(list) != 3 || list[2] != 3 {
		t.Errorf("Call1[[]int64] = %v, %v", list, err)
	}
	// Wrong arity.
	if _, err := Call1[int64](ctx, p, "two"); err == nil {
		t.Error("Call1 on two-result method succeeded")
	}
	// Unconvertible type.
	if _, err := Call1[string](ctx, p, "one"); err == nil {
		t.Error("Call1[string] of int succeeded")
	}
}

func TestCall2Typed(t *testing.T) {
	p := typedProxy(t)
	name, n, err := Call2[string, int](context.Background(), p, "two")
	if err != nil || name != "name" || n != 7 {
		t.Errorf("Call2 = %q, %d, %v", name, n, err)
	}
}

func TestCall0Typed(t *testing.T) {
	p := typedProxy(t)
	if err := Call0(context.Background(), p, "none"); err != nil {
		t.Fatal(err)
	}
	err := Call0(context.Background(), p, "boom")
	var ie *InvokeError
	if !errors.As(err, &ie) || ie.Code != CodeApp {
		t.Errorf("Call0 error = %v", err)
	}
}
