package obs

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// The causal-tracing half of the observability layer. A trace id is minted
// at the outermost client stub and carried across every context boundary
// as an optional header prefixed to the request payload; each hop (stub
// invocation, rpc attempt, server dispatch, smart-proxy fan-out) records a
// span naming its parent, so a multi-hop chain reconstructs as one tree.

// TraceID identifies one causal chain of invocations.
type TraceID uint64

// SpanID identifies one hop within a trace.
type SpanID uint64

// String renders the id as fixed-width hex (the form proxyctl accepts).
func (t TraceID) String() string { return fmt.Sprintf("%016x", uint64(t)) }

// String renders the id as fixed-width hex.
func (s SpanID) String() string { return fmt.Sprintf("%016x", uint64(s)) }

// ParseTraceID parses the hex form produced by TraceID.String.
func ParseTraceID(s string) (TraceID, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("obs: bad trace id %q: %w", s, err)
	}
	return TraceID(v), nil
}

// SpanContext is the propagated part of a span: which trace this work
// belongs to and which span caused it. The zero value means "untraced".
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

type spanCtxKey struct{}

// ContextWithSpan attaches a span context for downstream hops to parent
// their spans under.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// SpanFromContext extracts the active span context, if any.
func SpanFromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc, ok && sc.Trace != 0
}

// headerMagic introduces a trace header at the front of a request payload.
// Codec tags occupy 1..13, so a leading 0xF5 is unambiguous: headerless
// payloads from pre-trace peers start with TagList (9) and decode exactly
// as before, and pre-trace peers that receive a headered payload fail the
// decode cleanly rather than misinterpreting it.
const headerMagic = 0xF5

// AppendSpanHeader prefixes dst with the wire form of sc:
// [magic, uvarint trace, uvarint span]. A zero sc appends nothing.
func AppendSpanHeader(dst []byte, sc SpanContext) []byte {
	if sc.Trace == 0 {
		return dst
	}
	dst = append(dst, headerMagic)
	dst = wire.AppendUvarint(dst, uint64(sc.Trace))
	return wire.AppendUvarint(dst, uint64(sc.Span))
}

// SplitSpanHeader strips a leading trace header from a request payload,
// returning the carried span context and the remaining payload. Payloads
// without a header pass through untouched with a zero SpanContext; a
// truncated header also passes through (the codec layer then reports the
// malformed payload).
func SplitSpanHeader(payload []byte) (SpanContext, []byte) {
	if len(payload) == 0 || payload[0] != headerMagic {
		return SpanContext{}, payload
	}
	tr, n1, err := wire.Uvarint(payload[1:])
	if err != nil {
		return SpanContext{}, payload
	}
	sp, n2, err := wire.Uvarint(payload[1+n1:])
	if err != nil {
		return SpanContext{}, payload
	}
	return SpanContext{Trace: TraceID(tr), Span: SpanID(sp)}, payload[1+n1+n2:]
}

// Span is one recorded hop: a named piece of work in one context,
// parented under the hop that caused it. Parent is zero for trace roots.
type Span struct {
	Trace  TraceID
	ID     SpanID
	Parent SpanID
	Name   string // e.g. "invoke:get", "serve:put", "rpc:attempt#2"
	Where  string // context address the work ran in
	Start  time.Time
	Dur    time.Duration
	Err    string // empty on success
}

// Tracer mints span ids and keeps a bounded ring of finished spans. Ids
// are drawn from a per-tracer random seed mixed through splitmix64, so
// tracers in different processes mint disjoint ids and their spans can be
// merged into one tree. A nil *Tracer is valid and records nothing.
type Tracer struct {
	seed uint64
	ctr  atomic.Uint64

	mu   sync.Mutex
	ring []Span
	next int
	n    int
}

// DefaultTraceCapacity is the span-ring size NewTracer uses.
const DefaultTraceCapacity = 4096

// NewTracer builds a tracer retaining up to capacity finished spans
// (DefaultTraceCapacity if capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	t := &Tracer{ring: make([]Span, capacity)}
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err == nil {
		t.seed = binary.BigEndian.Uint64(b[:])
	}
	return t
}

// NewSpanID mints a fresh id (unique within this tracer, collision-free
// across tracers with overwhelming probability).
func (t *Tracer) NewSpanID() SpanID {
	x := t.seed + t.ctr.Add(1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return SpanID(x)
}

// noopFinish is returned when no span is started, so untraced hot paths
// do not allocate a closure per call.
var noopFinish = func(error) {}

// StartChild begins a span only when ctx already carries a trace;
// otherwise it is a no-op returning ctx unchanged. Mid-chain hops (stubs,
// smart proxies) use this, so tracing costs nothing until a caller opts
// in by opening a root span with StartSpan.
func (t *Tracer) StartChild(ctx context.Context, name, where string) (context.Context, func(err error)) {
	if t == nil {
		return ctx, noopFinish
	}
	if _, ok := SpanFromContext(ctx); !ok {
		return ctx, noopFinish
	}
	return t.StartSpan(ctx, name, where)
}

// StartSpan begins a span named name in location where, parented under
// the span already in ctx (a fresh trace is minted when there is none —
// this is how a client opens the root of a new trace). It returns the
// derived context carrying the new span and a finish function that
// records the span; call finish exactly once. A nil tracer returns ctx
// unchanged and a no-op finish.
func (t *Tracer) StartSpan(ctx context.Context, name, where string) (context.Context, func(err error)) {
	if t == nil {
		return ctx, noopFinish
	}
	parent, _ := SpanFromContext(ctx)
	sc := SpanContext{Trace: parent.Trace, Span: t.NewSpanID()}
	if sc.Trace == 0 {
		sc.Trace = TraceID(t.NewSpanID())
	}
	start := time.Now()
	nctx := ContextWithSpan(ctx, sc)
	return nctx, func(err error) {
		sp := Span{
			Trace:  sc.Trace,
			ID:     sc.Span,
			Parent: parent.Span,
			Name:   name,
			Where:  where,
			Start:  start,
			Dur:    time.Since(start),
		}
		if err != nil {
			sp.Err = err.Error()
		}
		t.Record(sp)
	}
}

// Record stores a finished span, evicting the oldest when full. Nil-safe.
func (t *Tracer) Record(sp Span) {
	if t == nil || len(t.ring) == 0 {
		return
	}
	t.mu.Lock()
	t.ring[t.next] = sp
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.mu.Unlock()
}

// all returns retained spans, oldest first.
func (t *Tracer) all() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, t.n)
	start := t.next - t.n
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < t.n; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}

// Spans returns the retained spans of one trace, in recording order.
func (t *Tracer) Spans(id TraceID) []Span {
	var out []Span
	for _, sp := range t.all() {
		if sp.Trace == id {
			out = append(out, sp)
		}
	}
	return out
}

// TraceSummary describes one trace retained in the ring.
type TraceSummary struct {
	Trace TraceID
	Spans int
	Root  string // name of the root span, if retained
	Start time.Time
}

// Recent summarises the most recently recorded traces, newest first,
// up to limit (unlimited if limit <= 0).
func (t *Tracer) Recent(limit int) []TraceSummary {
	all := t.all()
	byID := make(map[TraceID]*TraceSummary)
	order := make([]TraceID, 0, 16)
	for _, sp := range all {
		s, ok := byID[sp.Trace]
		if !ok {
			s = &TraceSummary{Trace: sp.Trace, Start: sp.Start}
			byID[sp.Trace] = s
			order = append(order, sp.Trace)
		}
		s.Spans++
		if sp.Parent == 0 {
			s.Root = sp.Name
		}
		if sp.Start.Before(s.Start) {
			s.Start = sp.Start
		}
	}
	out := make([]TraceSummary, 0, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		out = append(out, *byID[order[i]])
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// EncodeSpans serialises spans for transport (the obs service's "trace"
// method returns this form so proxyctl can merge daemon spans with its
// own).
func EncodeSpans(spans []Span) []byte {
	buf := wire.AppendUvarint(nil, uint64(len(spans)))
	for _, sp := range spans {
		buf = wire.AppendUvarint(buf, uint64(sp.Trace))
		buf = wire.AppendUvarint(buf, uint64(sp.ID))
		buf = wire.AppendUvarint(buf, uint64(sp.Parent))
		buf = wire.AppendString(buf, sp.Name)
		buf = wire.AppendString(buf, sp.Where)
		buf = wire.AppendVarint(buf, sp.Start.UnixNano())
		buf = wire.AppendVarint(buf, int64(sp.Dur))
		buf = wire.AppendString(buf, sp.Err)
	}
	return buf
}

// DecodeSpans inverts EncodeSpans.
func DecodeSpans(buf []byte) ([]Span, error) {
	count, n, err := wire.Uvarint(buf)
	if err != nil {
		return nil, fmt.Errorf("obs: decode spans: %w", err)
	}
	buf = buf[n:]
	if count > uint64(len(buf)) { // each span is at least several bytes
		return nil, fmt.Errorf("obs: span count %d exceeds payload", count)
	}
	out := make([]Span, 0, count)
	for i := uint64(0); i < count; i++ {
		var sp Span
		fields := []func([]byte) (int, error){
			func(b []byte) (int, error) { v, n, err := wire.Uvarint(b); sp.Trace = TraceID(v); return n, err },
			func(b []byte) (int, error) { v, n, err := wire.Uvarint(b); sp.ID = SpanID(v); return n, err },
			func(b []byte) (int, error) { v, n, err := wire.Uvarint(b); sp.Parent = SpanID(v); return n, err },
			func(b []byte) (int, error) { v, n, err := wire.String(b); sp.Name = v; return n, err },
			func(b []byte) (int, error) { v, n, err := wire.String(b); sp.Where = v; return n, err },
			func(b []byte) (int, error) { v, n, err := wire.Varint(b); sp.Start = time.Unix(0, v); return n, err },
			func(b []byte) (int, error) { v, n, err := wire.Varint(b); sp.Dur = time.Duration(v); return n, err },
			func(b []byte) (int, error) { v, n, err := wire.String(b); sp.Err = v; return n, err },
		}
		for _, f := range fields {
			n, err := f(buf)
			if err != nil {
				return nil, fmt.Errorf("obs: decode span %d: %w", i, err)
			}
			buf = buf[n:]
		}
		out = append(out, sp)
	}
	return out, nil
}

// FormatTrace renders spans of one trace as an indented tree, children
// ordered by start time. Spans whose parent is missing from the set
// (evicted from the ring, or recorded by an unreachable context) are
// rendered as extra roots, so partial traces still display.
func FormatTrace(w io.Writer, spans []Span) {
	if len(spans) == 0 {
		fmt.Fprintln(w, "(no spans)")
		return
	}
	fmt.Fprintf(w, "trace %s (%d spans)\n", spans[0].Trace, len(spans))
	have := make(map[SpanID]bool, len(spans))
	for _, sp := range spans {
		have[sp.ID] = true
	}
	children := make(map[SpanID][]Span)
	var roots []Span
	for _, sp := range spans {
		if sp.Parent != 0 && have[sp.Parent] && sp.Parent != sp.ID {
			children[sp.Parent] = append(children[sp.Parent], sp)
		} else {
			roots = append(roots, sp)
		}
	}
	byStart := func(s []Span) {
		sort.SliceStable(s, func(i, j int) bool { return s[i].Start.Before(s[j].Start) })
	}
	byStart(roots)
	for k := range children {
		byStart(children[k])
	}
	var render func(sp Span, depth int, seen map[SpanID]bool)
	render = func(sp Span, depth int, seen map[SpanID]bool) {
		if seen[sp.ID] {
			return
		}
		seen[sp.ID] = true
		for i := 0; i < depth; i++ {
			fmt.Fprint(w, "  ")
		}
		fmt.Fprintf(w, "└─ %s @%s %v", sp.Name, sp.Where, sp.Dur)
		if sp.Err != "" {
			fmt.Fprintf(w, " err=%q", sp.Err)
		}
		fmt.Fprintln(w)
		for _, ch := range children[sp.ID] {
			render(ch, depth+1, seen)
		}
	}
	seen := make(map[SpanID]bool, len(spans))
	for _, r := range roots {
		render(r, 1, seen)
	}
}
