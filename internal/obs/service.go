package obs

import (
	"context"
	"fmt"
	"strings"
)

// TypeName is the proxy type the observability service exports under.
// It has no custom factory: importers reach it through plain stubs.
const TypeName = "obs.Service"

// Service exposes an Observer over the ordinary invocation conventions,
// so proxyctl (or any remote client) can pull metrics and traces out of a
// running daemon. It implements core.Service structurally (this package
// sits below internal/core and cannot import it).
//
// Methods:
//
//	metrics()            -> text dump of the registry
//	traces(limit int64)  -> text summary of recent traces, newest first
//	trace(id string)     -> EncodeSpans form of one trace's spans
//	tracetext(id string) -> rendered tree of one trace
type Service struct {
	obs *Observer
}

// NewService wraps an observer for export.
func NewService(o *Observer) *Service { return &Service{obs: o} }

// Invoke dispatches the observability methods.
func (s *Service) Invoke(_ context.Context, method string, args []any) ([]any, error) {
	switch method {
	case "metrics":
		var b strings.Builder
		s.obs.Registry.Dump(&b)
		return []any{b.String()}, nil

	case "traces":
		limit := int64(20)
		if len(args) > 0 {
			if l, ok := args[0].(int64); ok && l > 0 {
				limit = l
			}
		}
		var b strings.Builder
		for _, ts := range s.obs.Tracer.Recent(int(limit)) {
			root := ts.Root
			if root == "" {
				root = "(root not retained)"
			}
			fmt.Fprintf(&b, "%s %3d spans  %s\n", ts.Trace, ts.Spans, root)
		}
		if b.Len() == 0 {
			b.WriteString("(no traces recorded)\n")
		}
		return []any{b.String()}, nil

	case "trace":
		id, err := traceArg(args)
		if err != nil {
			return nil, err
		}
		return []any{EncodeSpans(s.obs.Tracer.Spans(id))}, nil

	case "tracetext":
		id, err := traceArg(args)
		if err != nil {
			return nil, err
		}
		var b strings.Builder
		FormatTrace(&b, s.obs.Tracer.Spans(id))
		return []any{b.String()}, nil

	default:
		return nil, fmt.Errorf("obs: unknown method %q", method)
	}
}

func traceArg(args []any) (TraceID, error) {
	if len(args) < 1 {
		return 0, fmt.Errorf("obs: trace id argument required")
	}
	switch v := args[0].(type) {
	case string:
		return ParseTraceID(v)
	case int64:
		return TraceID(v), nil
	case uint64:
		return TraceID(v), nil
	default:
		return 0, fmt.Errorf("obs: trace id is %T, want string", args[0])
	}
}
