package obs

import (
	"fmt"
	"runtime"

	"repro/internal/wire"
)

// RegisterFastPathMetrics surfaces invocation fast-path health in reg as
// computed gauges: the wire frame/payload pool hit rates (a cold pool or
// a leak shows up as a rate stuck near zero) and, when ops is non-nil, a
// process-wide allocations-per-operation estimate — cumulative heap
// allocations (runtime.MemStats.Mallocs) divided by the operation count,
// so a regression on the zero-allocation path drags the quotient up.
// The estimate includes startup allocation, so it converges on the true
// per-op cost only as the operation count grows; it is a health signal,
// not a benchmark (use the alloc-budget tests and proxybench for those).
func RegisterFastPathMetrics(reg *Registry, ops func() uint64) {
	reg.GaugeFunc("wire.pool.frame_hit_rate", func() string {
		return fmt.Sprintf("%.3f", wire.ReadPoolStats().FrameHitRate())
	})
	reg.GaugeFunc("wire.pool.buf_hit_rate", func() string {
		return fmt.Sprintf("%.3f", wire.ReadPoolStats().BufHitRate())
	})
	if ops == nil {
		return
	}
	reg.GaugeFunc("proc.allocs_per_op", func() string {
		n := ops()
		if n == 0 {
			return "0"
		}
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return fmt.Sprintf("%.1f", float64(ms.Mallocs)/float64(n))
	})
}
