package obs_test

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/wire"
)

// TestRegisterTrainMetrics wires a live coalescer into a registry and
// checks every gauge resolves: the send-side ones against the coalescer's
// counters after real traffic, the unpack ones against the process-wide
// train counters.
func TestRegisterTrainMetrics(t *testing.T) {
	var sent []*wire.Frame
	co := wire.NewCoalescer(1, func(f *wire.Frame) error {
		sent = append(sent, f)
		return nil
	}, wire.CoalescerConfig{})
	defer co.Close()
	co.MarkCapable(2)

	reg := obs.NewRegistry()
	obs.RegisterTrainMetrics(reg, co)

	// Inline traffic so the counters move.
	for i := 0; i < 3; i++ {
		f := &wire.Frame{Kind: wire.KindRequest, ReqID: uint64(i), Dst: wire.Addr{Node: 2}, Object: 1}
		if err := co.Send(f); err != nil {
			t.Fatal(err)
		}
	}
	if len(sent) != 3 {
		t.Fatalf("sent %d frames, want 3", len(sent))
	}

	got := map[string]string{}
	reg.Each(func(kind, name, value string) {
		if kind == "gauge" {
			got[name] = value
		}
	})
	for _, name := range []string{
		"wire.trains.sent", "wire.trains.avg_fill", "wire.trains.inline_sends",
		"wire.trains.staged_frames", "wire.trains.overflow", "wire.trains.send_errors",
		"wire.trains.unpacked", "wire.trains.members_unpacked", "wire.trains.members_rejected",
	} {
		if _, ok := got[name]; !ok {
			t.Errorf("gauge %s not registered (have %v)", name, got)
		}
	}
	if got["wire.trains.inline_sends"] != "3" {
		t.Errorf("inline_sends = %q, want 3", got["wire.trains.inline_sends"])
	}
	if got["wire.trains.sent"] != "0" {
		t.Errorf("trains sent = %q, want 0 for idle inline traffic", got["wire.trains.sent"])
	}

	// Without a coalescer only the unpack gauges register (a receive-only
	// process still wants the rejected-members signal).
	recvOnly := obs.NewRegistry()
	obs.RegisterTrainMetrics(recvOnly, nil)
	n := 0
	recvOnly.Each(func(kind, name, value string) { n++ })
	if n != 3 {
		t.Errorf("receive-only registry has %d gauges, want 3", n)
	}
}
