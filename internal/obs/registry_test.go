package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.calls")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a.calls") != c {
		t.Fatal("same name must return the same counter")
	}
	g := r.Gauge("a.depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	if r.Gauge("a.depth") != g {
		t.Fatal("same name must return the same gauge")
	}
	if r.Histogram("a.lat") != r.Histogram("a.lat") {
		t.Fatal("same name must return the same histogram")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Load(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Snapshot().Count; got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Count != 0 || s.P99 != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
	// 90 fast ops around 1ms, 10 slow around 100ms.
	for i := 0; i < 90; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if s.P50 > 2*time.Millisecond {
		t.Fatalf("p50 = %v, want <= 2ms (bucket upper bound of 1ms)", s.P50)
	}
	if s.P99 < 50*time.Millisecond {
		t.Fatalf("p99 = %v, want >= 50ms", s.P99)
	}
	if s.P50 > s.P95 || s.P95 > s.P99 {
		t.Fatalf("quantiles not monotonic: p50=%v p95=%v p99=%v", s.P50, s.P95, s.P99)
	}
	if s.Mean < 5*time.Millisecond || s.Mean > 20*time.Millisecond {
		t.Fatalf("mean = %v, want ~10.9ms", s.Mean)
	}
	if s.Max < 100*time.Millisecond {
		t.Fatalf("max = %v, want >= 100ms", s.Max)
	}
	// Zero and negative durations land in bucket 0 without panicking.
	h.Observe(0)
	h.Observe(-time.Second)
	if got := h.Snapshot().Count; got != 102 {
		t.Fatalf("count = %d, want 102", got)
	}
}

func TestRegistryDump(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.second").Add(2)
	r.Counter("a.first").Add(1)
	r.Gauge("m.gauge").Set(-3)
	r.Histogram("lat").Observe(time.Millisecond)
	var b strings.Builder
	r.Dump(&b)
	out := b.String()
	for _, want := range []string{"counter a.first 1", "counter z.second 2", "gauge   m.gauge -3", "hist    lat count=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
	// Counters are sorted by name.
	if strings.Index(out, "a.first") > strings.Index(out, "z.second") {
		t.Fatalf("dump not sorted:\n%s", out)
	}
}
