package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestSpanHeaderRoundTrip(t *testing.T) {
	sc := SpanContext{Trace: 0xDEADBEEF, Span: 42}
	body := []byte{9, 1, 2, 3} // a plausible codec list payload
	wireForm := append(AppendSpanHeader(nil, sc), body...)
	got, rest := SplitSpanHeader(wireForm)
	if got != sc {
		t.Fatalf("decoded %+v, want %+v", got, sc)
	}
	if string(rest) != string(body) {
		t.Fatalf("rest = %v, want %v", rest, body)
	}
}

func TestSpanHeaderHeaderless(t *testing.T) {
	// A pre-trace request payload (starts with a codec tag, 1..13) must
	// pass through untouched — wire backward compatibility.
	body := []byte{9, 3, 4, 104, 105}
	sc, rest := SplitSpanHeader(body)
	if sc.Trace != 0 || sc.Span != 0 {
		t.Fatalf("headerless payload produced span context %+v", sc)
	}
	if &rest[0] != &body[0] || len(rest) != len(body) {
		t.Fatal("headerless payload must pass through unmodified")
	}
	// Zero span context appends nothing.
	if out := AppendSpanHeader(nil, SpanContext{}); len(out) != 0 {
		t.Fatalf("zero header appended %d bytes", len(out))
	}
	// Empty and truncated-header payloads pass through rather than panic.
	if _, rest := SplitSpanHeader(nil); rest != nil {
		t.Fatal("nil payload must pass through")
	}
	trunc := []byte{headerMagic, 0x80}
	if sc, rest := SplitSpanHeader(trunc); sc.Trace != 0 || len(rest) != len(trunc) {
		t.Fatal("truncated header must pass through with zero context")
	}
}

func TestTraceIDParse(t *testing.T) {
	id := TraceID(0x0123456789ABCDEF)
	back, err := ParseTraceID(id.String())
	if err != nil || back != id {
		t.Fatalf("ParseTraceID(%q) = %v, %v", id.String(), back, err)
	}
	if _, err := ParseTraceID("not-hex"); err == nil {
		t.Fatal("want error for bad trace id")
	}
	if s := SpanID(1).String(); len(s) != 16 {
		t.Fatalf("span id string %q, want 16 hex chars", s)
	}
}

func TestStartSpanParenting(t *testing.T) {
	tr := NewTracer(16)
	ctx, finishRoot := tr.StartSpan(context.Background(), "root", "1.1")
	rootSC, ok := SpanFromContext(ctx)
	if !ok || rootSC.Trace == 0 || rootSC.Span == 0 {
		t.Fatalf("root span context = %+v", rootSC)
	}
	ctx2, finishChild := tr.StartSpan(ctx, "child", "2.1")
	childSC, _ := SpanFromContext(ctx2)
	if childSC.Trace != rootSC.Trace {
		t.Fatal("child must inherit the trace id")
	}
	if childSC.Span == rootSC.Span {
		t.Fatal("child must mint a fresh span id")
	}
	finishChild(context.DeadlineExceeded)
	finishRoot(nil)

	spans := tr.Spans(rootSC.Trace)
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	byName := map[string]Span{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	if byName["child"].Parent != rootSC.Span {
		t.Fatalf("child parent = %v, want %v", byName["child"].Parent, rootSC.Span)
	}
	if byName["root"].Parent != 0 {
		t.Fatalf("root parent = %v, want 0", byName["root"].Parent)
	}
	if byName["child"].Err == "" {
		t.Fatal("child error not recorded")
	}

	// StartChild without an active trace: no-op, nothing recorded.
	nctx2, finishIdle := tr.StartChild(context.Background(), "idle", "1.1")
	if _, ok := SpanFromContext(nctx2); ok {
		t.Fatal("StartChild must not mint a trace on an untraced ctx")
	}
	finishIdle(nil)
	if got := len(tr.Spans(rootSC.Trace)); got != 2 {
		t.Fatalf("idle StartChild recorded a span: %d spans", got)
	}
	// StartChild under an active trace behaves like StartSpan.
	cctx, finishC := tr.StartChild(ctx, "child2", "3.1")
	csc, ok := SpanFromContext(cctx)
	if !ok || csc.Trace != rootSC.Trace || csc.Span == rootSC.Span {
		t.Fatalf("StartChild context = %+v", csc)
	}
	finishC(nil)

	// Nil tracer: no-ops all the way down.
	var nilT *Tracer
	nctx, finish := nilT.StartSpan(context.Background(), "x", "y")
	finish(nil)
	_, nfinish := nilT.StartChild(context.Background(), "x", "y")
	nfinish(nil)
	nilT.Record(Span{})
	if _, ok := SpanFromContext(nctx); ok {
		t.Fatal("nil tracer must not attach spans")
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(Span{Trace: 1, ID: SpanID(i + 1)})
	}
	spans := tr.Spans(1)
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	if spans[0].ID != 7 || spans[3].ID != 10 {
		t.Fatalf("ring kept %v..%v, want 7..10", spans[0].ID, spans[3].ID)
	}
}

func TestTracerIDsDistinct(t *testing.T) {
	a, b := NewTracer(1), NewTracer(1)
	seen := map[SpanID]bool{}
	for i := 0; i < 1000; i++ {
		for _, tr := range []*Tracer{a, b} {
			id := tr.NewSpanID()
			if id == 0 || seen[id] {
				t.Fatalf("duplicate or zero span id %v", id)
			}
			seen[id] = true
		}
	}
}

func TestRecent(t *testing.T) {
	tr := NewTracer(16)
	tr.Record(Span{Trace: 1, ID: 1, Name: "first-root"})
	tr.Record(Span{Trace: 1, ID: 2, Parent: 1, Name: "first-child"})
	tr.Record(Span{Trace: 2, ID: 3, Name: "second-root"})
	rec := tr.Recent(10)
	if len(rec) != 2 {
		t.Fatalf("got %d traces, want 2", len(rec))
	}
	if rec[0].Trace != 2 || rec[0].Root != "second-root" {
		t.Fatalf("newest first: got %+v", rec[0])
	}
	if rec[1].Spans != 2 {
		t.Fatalf("trace 1 spans = %d, want 2", rec[1].Spans)
	}
	if got := tr.Recent(1); len(got) != 1 {
		t.Fatalf("limit 1 returned %d", len(got))
	}
}

func TestEncodeDecodeSpans(t *testing.T) {
	in := []Span{
		{Trace: 7, ID: 8, Parent: 0, Name: "root", Where: "1.1", Start: time.Unix(0, 12345), Dur: 3 * time.Millisecond},
		{Trace: 7, ID: 9, Parent: 8, Name: "child", Where: "2.1", Start: time.Unix(0, 23456), Dur: time.Millisecond, Err: "boom"},
	}
	out, err := DecodeSpans(EncodeSpans(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d spans, want %d", len(out), len(in))
	}
	for i := range in {
		if !out[i].Start.Equal(in[i].Start) {
			t.Fatalf("span %d start %v != %v", i, out[i].Start, in[i].Start)
		}
		out[i].Start = in[i].Start
		if out[i] != in[i] {
			t.Fatalf("span %d = %+v, want %+v", i, out[i], in[i])
		}
	}
	if _, err := DecodeSpans([]byte{0xFF, 0xFF, 0xFF}); err == nil {
		t.Fatal("want error for garbage input")
	}
	if _, err := DecodeSpans([]byte{2, 1}); err == nil {
		t.Fatal("want error for truncated input")
	}
}

func TestFormatTrace(t *testing.T) {
	base := time.Unix(0, 0)
	spans := []Span{
		{Trace: 5, ID: 1, Name: "invoke:get", Where: "3.1", Start: base, Dur: time.Millisecond},
		{Trace: 5, ID: 2, Parent: 1, Name: "serve:get", Where: "1.1", Start: base.Add(time.Microsecond)},
		{Trace: 5, ID: 3, Parent: 99, Name: "orphan", Where: "2.1", Start: base.Add(2 * time.Microsecond), Err: "lost parent"},
	}
	var b strings.Builder
	FormatTrace(&b, spans)
	out := b.String()
	for _, want := range []string{"trace 0000000000000005 (3 spans)", "invoke:get", "serve:get", "orphan", `err="lost parent"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// serve:get must be indented under invoke:get.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "serve:get") && !strings.HasPrefix(line, "    ") {
			t.Fatalf("child not indented: %q", line)
		}
	}
	var empty strings.Builder
	FormatTrace(&empty, nil)
	if !strings.Contains(empty.String(), "no spans") {
		t.Fatalf("empty render = %q", empty.String())
	}
}
