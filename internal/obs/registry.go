package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The metrics half of the observability layer: a process-wide registry of
// named counters, gauges, and latency histograms. Instrument handles are
// resolved once (at construction time, off the hot path) and then updated
// with single atomic operations, matching the cost profile of the
// per-package atomic counters they replace.

// Counter is a monotonically increasing count. The zero value is usable
// but unnamed; obtain named instances from a Registry.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a value that can move both ways (queue depths, sharer counts).
type Gauge struct {
	v atomic.Int64
}

// Set stores an absolute value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// GaugeFunc is a computed gauge: the callback is evaluated at read time
// (Each/Dump), so values that already exist elsewhere — pool hit rates,
// queue depths owned by another subsystem — can be surfaced without a
// write on every change. The callback must be safe for concurrent use and
// cheap; it runs on whatever goroutine is snapshotting the registry.
type GaugeFunc func() string

// histBuckets is the number of exponential histogram buckets. Bucket i
// holds durations whose nanosecond count has bit-length i, i.e. the range
// [2^(i-1), 2^i); bucket 0 holds zero. 64 buckets cover every possible
// int64 duration.
const histBuckets = 64

// Histogram records durations into exponential (power-of-two) buckets.
// Recording is a single atomic add; quantiles are approximate to within
// a factor of two, which is plenty to tell a 2 µs hot path from a 2 ms
// stall. Use Registry.Histogram for named instances.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // total nanoseconds
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.buckets[bits.Len64(uint64(ns))].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(ns))
}

// HistogramSnapshot is a point-in-time summary of a histogram.
type HistogramSnapshot struct {
	Count uint64
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration // upper bound of the highest occupied bucket
}

// Snapshot summarises the histogram. Quantiles report the upper bound of
// the bucket containing the requested rank.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var counts [histBuckets]uint64
	var total, sum uint64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	sum = h.sum.Load()
	s := HistogramSnapshot{Count: total}
	if total == 0 {
		return s
	}
	s.Mean = time.Duration(sum / total)
	s.P50 = quantile(&counts, total, 0.50)
	s.P95 = quantile(&counts, total, 0.95)
	s.P99 = quantile(&counts, total, 0.99)
	for i := histBuckets - 1; i >= 0; i-- {
		if counts[i] != 0 {
			s.Max = bucketUpper(i)
			break
		}
	}
	return s
}

// quantile returns the upper bound of the bucket holding the q-th ranked
// observation.
func quantile(counts *[histBuckets]uint64, total uint64, q float64) time.Duration {
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i, c := range counts {
		seen += c
		if seen > rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(histBuckets - 1)
}

// bucketUpper is the inclusive upper bound of bucket i in nanoseconds.
func bucketUpper(i int) time.Duration {
	if i == 0 {
		return 0
	}
	if i >= 63 {
		return time.Duration(int64(^uint64(0) >> 1)) // max int64
	}
	return time.Duration((uint64(1) << i) - 1)
}

// Registry is a concurrent name → instrument table. Lookup (get-or-create)
// takes a lock and is meant for construction time; the returned handles
// are lock-free. A Registry is safe for concurrent use; the zero value is
// NOT usable — construct with NewRegistry.
type Registry struct {
	mu     sync.RWMutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	funcs  map[string]GaugeFunc
	hists  map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		funcs:  make(map[string]GaugeFunc),
		hists:  make(map[string]*Histogram),
	}
}

// GaugeFunc registers (or replaces) a computed gauge under the given
// name. It appears in Each/Dump alongside stored gauges.
func (r *Registry) GaugeFunc(name string, fn GaugeFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counts[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counts[name]; ok {
		return c
	}
	c = &Counter{}
	r.counts[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h = &Histogram{}
	r.hists[name] = h
	return h
}

// Each calls fn for every counter value, sorted by name (snapshot reads).
func (r *Registry) Each(fn func(kind, name string, value string)) {
	r.mu.RLock()
	cnames := make([]string, 0, len(r.counts))
	for n := range r.counts {
		cnames = append(cnames, n)
	}
	gnames := make([]string, 0, len(r.gauges))
	for n := range r.gauges {
		gnames = append(gnames, n)
	}
	fnames := make([]string, 0, len(r.funcs))
	for n := range r.funcs {
		fnames = append(fnames, n)
	}
	hnames := make([]string, 0, len(r.hists))
	for n := range r.hists {
		hnames = append(hnames, n)
	}
	counts, gauges, funcs, hists := r.counts, r.gauges, r.funcs, r.hists
	r.mu.RUnlock()

	sort.Strings(cnames)
	sort.Strings(gnames)
	sort.Strings(fnames)
	sort.Strings(hnames)
	for _, n := range cnames {
		fn("counter", n, fmt.Sprintf("%d", counts[n].Load()))
	}
	for _, n := range gnames {
		fn("gauge", n, fmt.Sprintf("%d", gauges[n].Load()))
	}
	for _, n := range fnames {
		fn("gauge", n, funcs[n]())
	}
	for _, n := range hnames {
		s := hists[n].Snapshot()
		fn("hist", n, fmt.Sprintf("count=%d mean=%v p50=%v p95=%v p99=%v max=%v",
			s.Count, s.Mean, s.P50, s.P95, s.P99, s.Max))
	}
}

// Dump writes a sorted, line-oriented text rendering of every instrument:
//
//	counter rpc.client[1.1].calls 42
//	gauge   cache.coord[1.1/3].sharers 2
//	hist    bench.invoke count=100 mean=2µs p50=2µs ...
func (r *Registry) Dump(w io.Writer) {
	r.Each(func(kind, name, value string) {
		fmt.Fprintf(w, "%-7s %s %s\n", kind, name, value)
	})
}
