// Package obs is the unified observability layer: one metrics registry
// (named counters/gauges/histograms, atomic on the hot path) and one
// causal tracer (trace/span ids propagated through request payloads)
// shared by every layer of the proxy runtime.
//
// The proxy is the natural interposition point for both: every
// cross-context invocation already funnels through a stub or smart proxy,
// so instrumenting the proxy layer observes the whole system without
// touching services. A trace id minted at the outermost stub rides an
// optional payload header across contexts; each hop — stub invocation,
// rpc transmission attempt, server dispatch, cache miss, replica
// broadcast, migration forward — records a span naming its parent, and
// the resulting spans from any subset of contexts merge into one tree.
//
// The package sits below internal/core (which imports it); its exported
// Service mirrors core's Service interface structurally so a daemon can
// export its observer without an import cycle.
package obs

// Observer bundles the two halves. Layers share one Observer per runtime
// (or one per cluster in tests, so spans from all contexts land in one
// ring).
type Observer struct {
	Registry *Registry
	Tracer   *Tracer
}

// NewObserver builds an observer with an empty registry and a
// default-capacity tracer.
func NewObserver() *Observer {
	return &Observer{Registry: NewRegistry(), Tracer: NewTracer(0)}
}
