package obs

import (
	"context"
	"strings"
	"testing"
)

func TestServiceMetricsAndTraces(t *testing.T) {
	o := NewObserver()
	o.Registry.Counter("x.calls").Add(3)
	ctx, finish := o.Tracer.StartSpan(context.Background(), "root", "1.1")
	sc, _ := SpanFromContext(ctx)
	finish(nil)

	svc := NewService(o)
	res, err := svc.Invoke(context.Background(), "metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	if text := res[0].(string); !strings.Contains(text, "x.calls 3") {
		t.Fatalf("metrics dump missing counter:\n%s", text)
	}

	res, err = svc.Invoke(context.Background(), "traces", []any{int64(5)})
	if err != nil {
		t.Fatal(err)
	}
	if text := res[0].(string); !strings.Contains(text, sc.Trace.String()) {
		t.Fatalf("traces listing missing %s:\n%s", sc.Trace, text)
	}

	res, err = svc.Invoke(context.Background(), "trace", []any{sc.Trace.String()})
	if err != nil {
		t.Fatal(err)
	}
	spans, err := DecodeSpans(res[0].([]byte))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || spans[0].Name != "root" {
		t.Fatalf("trace returned %+v", spans)
	}

	res, err = svc.Invoke(context.Background(), "tracetext", []any{sc.Trace.String()})
	if err != nil {
		t.Fatal(err)
	}
	if text := res[0].(string); !strings.Contains(text, "root @1.1") {
		t.Fatalf("tracetext = %q", text)
	}
}

func TestServiceErrors(t *testing.T) {
	svc := NewService(NewObserver())
	if _, err := svc.Invoke(context.Background(), "nope", nil); err == nil {
		t.Fatal("want error for unknown method")
	}
	if _, err := svc.Invoke(context.Background(), "trace", nil); err == nil {
		t.Fatal("want error for missing trace id")
	}
	if _, err := svc.Invoke(context.Background(), "trace", []any{3.14}); err == nil {
		t.Fatal("want error for bad trace id type")
	}
	if _, err := svc.Invoke(context.Background(), "trace", []any{int64(7)}); err != nil {
		t.Fatalf("int64 trace id rejected: %v", err)
	}
	if res, err := svc.Invoke(context.Background(), "traces", nil); err != nil || !strings.Contains(res[0].(string), "no traces") {
		t.Fatalf("empty traces = %v, %v", res, err)
	}
}
