package obs_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/wire"
)

// buildChain stands up the 3-hop topology used by the propagation tests:
// node 1 exports a replicated KV, node 2 fronts it behind a cached
// service, node 3 is the client. A write from node 3 therefore crosses
// cache proxy -> cache coordinator -> replica proxy -> replica primary ->
// group broadcast, through three distinct contexts.
func buildChain(t *testing.T) (*bench.Cluster, core.Proxy) {
	t.Helper()
	c, err := bench.NewCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	repFactory := replica.NewFactory(bench.KVReads(), func() replica.StateMachine { return bench.NewKV() })
	for i := 0; i < 3; i++ {
		c.RT(i).RegisterProxyType("RepKV", repFactory)
		c.RT(i).RegisterProxyType("FrontKV", cache.NewFactory(bench.KVReads()))
	}

	repRef, err := c.RT(0).Export(bench.NewKV(), "RepKV")
	if err != nil {
		t.Fatal(err)
	}
	repProxy, err := c.RT(1).Import(repRef)
	if err != nil {
		t.Fatal(err)
	}
	front := core.ServiceFunc(func(ctx context.Context, method string, args []any) ([]any, error) {
		return repProxy.Invoke(ctx, method, args...)
	})
	frontRef, err := c.RT(1).Export(front, "FrontKV")
	if err != nil {
		t.Fatal(err)
	}
	cached, err := c.RT(2).Import(frontRef)
	if err != nil {
		t.Fatal(err)
	}
	return c, cached
}

// TestThreeHopTraceTree drives one traced write through the full chain
// and asserts the recorded spans form a single connected tree rooted at
// the client span, with hops in all three contexts.
func TestThreeHopTraceTree(t *testing.T) {
	c, cached := buildChain(t)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	tctx, finish := c.Obs.Tracer.StartSpan(ctx, "client:put", "test")
	root, _ := obs.SpanFromContext(tctx)
	if _, err := cached.Invoke(tctx, "put", "k", int64(7)); err != nil {
		t.Fatal(err)
	}
	finish(nil)

	spans := c.Obs.Tracer.Spans(root.Trace)
	byID := make(map[obs.SpanID]obs.Span, len(spans))
	names := make(map[string]obs.Span, len(spans))
	wheres := make(map[string]bool)
	for _, sp := range spans {
		if sp.Trace != root.Trace {
			t.Fatalf("span %+v has foreign trace", sp)
		}
		byID[sp.ID] = sp
		names[sp.Name] = sp
		wheres[sp.Where] = true
	}

	// Every hop the chain crosses must have recorded its span.
	for _, want := range []string{
		"client:put",            // test root
		"cache.write:put",       // caching proxy on node 3
		"cache.serve.write:put", // coordinator on node 2
		"replica.write:put",     // replica proxy (member) on node 2
		"replica.apply:put",     // primary on node 1
	} {
		if _, ok := names[want]; !ok {
			t.Fatalf("missing span %q; have %v", want, keys(names))
		}
	}
	// rpc transmission attempts ride along as spans too.
	foundAttempt := false
	for n := range names {
		if strings.HasPrefix(n, "rpc:attempt#") {
			foundAttempt = true
		}
	}
	if !foundAttempt {
		t.Fatalf("no rpc attempt spans recorded; have %v", keys(names))
	}

	// One connected tree: exactly one root, and every other span's parent
	// chain reaches it within the recorded set.
	roots := 0
	for _, sp := range spans {
		if sp.Parent == 0 {
			roots++
			continue
		}
		cur, hops := sp, 0
		for cur.Parent != 0 {
			parent, ok := byID[cur.Parent]
			if !ok {
				t.Fatalf("span %q parent %v not recorded — tree disconnected", cur.Name, cur.Parent)
			}
			cur = parent
			if hops++; hops > len(spans) {
				t.Fatal("parent cycle")
			}
		}
		if cur.ID != root.Span {
			t.Fatalf("span %q chains to root %v, want %v", sp.Name, cur.ID, root.Span)
		}
	}
	if roots != 1 {
		t.Fatalf("got %d roots, want 1", roots)
	}

	// Hops ran in three distinct contexts (plus the test's own location).
	for _, where := range []string{"3.1", "2.1", "1.1"} {
		if !wheres[where] {
			t.Fatalf("no span recorded in context %s; wheres=%v", where, wheres)
		}
	}

	// Structure spot-checks: the coordinator's serve span parents under
	// the caching proxy's write span, and the primary's apply span chains
	// below the replica proxy's write span.
	if names["cache.serve.write:put"].Parent != names["cache.write:put"].ID {
		t.Fatal("coordinator span not parented under cache proxy span")
	}
	if names["replica.apply:put"].Parent != names["replica.write:put"].ID {
		t.Fatal("primary span not parented under replica proxy span")
	}

	// The same tree renders without orphan roots.
	var b strings.Builder
	obs.FormatTrace(&b, spans)
	if !strings.Contains(b.String(), "replica.apply:put") {
		t.Fatalf("render missing spans:\n%s", b.String())
	}
}

// TestTracedReadMiss checks the cache-miss read path emits a connected
// miss -> serve chain, while a subsequent hit stays span-free.
func TestTracedReadMiss(t *testing.T) {
	c, cached := buildChain(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	tctx, finish := c.Obs.Tracer.StartSpan(ctx, "client:get", "test")
	root, _ := obs.SpanFromContext(tctx)
	if _, err := cached.Invoke(tctx, "get", "k"); err != nil {
		t.Fatal(err)
	}
	finish(nil)
	spans := c.Obs.Tracer.Spans(root.Trace)
	var miss, serve bool
	for _, sp := range spans {
		if sp.Name == "cache.miss:get" {
			miss = true
		}
		if sp.Name == "cache.serve.read:get" {
			serve = true
		}
	}
	if !miss || !serve {
		t.Fatalf("miss chain incomplete: miss=%v serve=%v in %v", miss, serve, keys(spanNames(spans)))
	}

	// Second read is a hit: no new spans for this trace.
	t2, finish2 := c.Obs.Tracer.StartSpan(ctx, "client:get2", "test")
	root2, _ := obs.SpanFromContext(t2)
	if _, err := cached.Invoke(t2, "get", "k"); err != nil {
		t.Fatal(err)
	}
	finish2(nil)
	for _, sp := range c.Obs.Tracer.Spans(root2.Trace) {
		if sp.Name != "client:get2" {
			t.Fatalf("cache hit recorded span %q; hits must stay uninstrumented", sp.Name)
		}
	}
}

// TestHeaderlessRequestStillDecodes proves wire backward compatibility:
// a pre-trace peer's headerless request payload (plain EncodeRequest,
// sent straight through the rpc client) executes normally.
func TestHeaderlessRequestStillDecodes(t *testing.T) {
	c, err := bench.NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ref, err := c.RT(0).Export(bench.NewKV(), "KV")
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	payload, err := core.EncodeRequest(ref.Cap, "put", []any{"k", int64(41)})
	if err != nil {
		t.Fatal(err)
	}
	reply, err := c.RT(1).Client().Call(ctx, ref.Target, wire.KindRequest, payload)
	if err != nil {
		t.Fatal(err)
	}
	results, err := core.DecodeResults(c.RT(1).Decoder(), reply)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].(int64) != 41 {
		t.Fatalf("results = %v", results)
	}

	// And the traced form decodes through the legacy entry point: the
	// header is stripped and ignored.
	traced, err := core.EncodeRequestTraced(ref.Cap, "get", []any{"k"}, obs.SpanContext{Trace: 9, Span: 3})
	if err != nil {
		t.Fatal(err)
	}
	_, method, args, err := core.DecodeRequest(c.RT(0).Decoder(), traced)
	if err != nil {
		t.Fatal(err)
	}
	if method != "get" || len(args) != 1 {
		t.Fatalf("decoded %q %v", method, args)
	}
}

func keys(m map[string]obs.Span) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func spanNames(spans []obs.Span) map[string]obs.Span {
	m := make(map[string]obs.Span, len(spans))
	for _, sp := range spans {
		m[sp.Name] = sp
	}
	return m
}
