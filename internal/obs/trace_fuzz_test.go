package obs

import (
	"bytes"
	"testing"
)

// Fuzz entry point for the trace-header parser (0xF5), the obs-owned
// member of the optional payload-header family (priority, session, and
// deadline live in internal/wire and are fuzzed there). Same contract:
// never panic, hand malformed payloads through untouched, and parse any
// accepted header back to the values that re-encode it. Run with e.g.
//
//	go test -fuzz=FuzzSplitSpanHeader -fuzztime=30s ./internal/obs
func FuzzSplitSpanHeader(f *testing.F) {
	good := AppendSpanHeader(nil, SpanContext{Trace: 0x0102, Span: 0x77})
	good = append(good, "body"...)
	f.Add(good)
	f.Add([]byte{headerMagic})             // magic alone
	f.Add([]byte{headerMagic, 0x85})       // truncated trace uvarint
	f.Add([]byte{0xF4, 'j', 'u', 'n', 'k'}) // unassigned header magic
	f.Add([]byte("headerless payload"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		sc, rest := SplitSpanHeader(data)
		if len(rest) > len(data) || (len(rest) > 0 && !bytes.HasSuffix(data, rest)) {
			t.Fatalf("rest is not a suffix of the payload (%d of %d bytes)", len(rest), len(data))
		}
		if len(rest) == len(data) {
			return // nothing consumed: must have parsed nothing
		}
		if sc.Trace == 0 {
			// A zero trace id cannot re-encode (zero means "untraced"),
			// but a non-minimal uvarint may still have been consumed.
			return
		}
		// Uvarint fields admit non-minimal encodings, so compare the
		// re-parse rather than the bytes.
		sc2, r2 := SplitSpanHeader(append(AppendSpanHeader(nil, sc), rest...))
		if sc2 != sc || !bytes.Equal(r2, rest) {
			t.Fatalf("round trip: got %+v, want %+v", sc2, sc)
		}
	})
}
