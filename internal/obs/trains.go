package obs

import (
	"fmt"

	"repro/internal/wire"
)

// RegisterTrainMetrics surfaces frame-train health in reg as computed
// gauges. The send side reads the given coalescer's counters — trains
// sent, average fill, the inline/staged split, and the two failure
// shapes worth alerting on (overflow bypasses and send errors). The
// receive side reads the process-wide unpack counters, where a nonzero
// rejected-members rate means peers are shipping corrupt or truncated
// members. Fill is the headline: it approximates frames (syscalls, on a
// real transport) saved per send, and a fill stuck near 1 means the
// coalescer is paying staging cost for no batching win.
func RegisterTrainMetrics(reg *Registry, co *wire.Coalescer) {
	if co != nil {
		reg.GaugeFunc("wire.trains.sent", func() string {
			return fmt.Sprintf("%d", co.Stats().TrainsSent)
		})
		reg.GaugeFunc("wire.trains.avg_fill", func() string {
			return fmt.Sprintf("%.2f", co.Stats().AvgFill())
		})
		reg.GaugeFunc("wire.trains.inline_sends", func() string {
			return fmt.Sprintf("%d", co.Stats().InlineSends)
		})
		reg.GaugeFunc("wire.trains.staged_frames", func() string {
			return fmt.Sprintf("%d", co.Stats().StagedFrames)
		})
		reg.GaugeFunc("wire.trains.overflow", func() string {
			return fmt.Sprintf("%d", co.Stats().Overflow)
		})
		reg.GaugeFunc("wire.trains.send_errors", func() string {
			return fmt.Sprintf("%d", co.Stats().SendErrors)
		})
	}
	reg.GaugeFunc("wire.trains.unpacked", func() string {
		return fmt.Sprintf("%d", wire.ReadTrainStats().TrainsUnpacked)
	})
	reg.GaugeFunc("wire.trains.members_unpacked", func() string {
		return fmt.Sprintf("%d", wire.ReadTrainStats().MembersUnpacked)
	})
	reg.GaugeFunc("wire.trains.members_rejected", func() string {
		return fmt.Sprintf("%d", wire.ReadTrainStats().MembersRejected)
	})
}
