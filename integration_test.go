package repro

// Whole-system integration tests: several subsystems composed the way a
// real deployment composes them, over an imperfect network.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/migrate"
	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/replica"
	"repro/internal/rpc"
	"repro/internal/wire"
)

// TestFullSystem builds a three-node deployment with a replicated name
// service, a cached file-like KV, and a migratable worker object — all
// reached by name — and drives them together over a lossy, slow network.
func TestFullSystem(t *testing.T) {
	net := netsim.New(
		netsim.WithDefaultLink(netsim.LinkConfig{Latency: 200 * time.Microsecond, LossRate: 0.02}),
		netsim.WithSeed(11),
	)
	defer net.Close()

	dirFactory := replica.NewFactory(
		[]string{"lookup", "list"},
		func() replica.StateMachine { return naming.NewDirectory() },
	)
	kvCacheFactory := cache.NewFactory(bench.KVReads())
	migFactory := migrate.NewFactory("Worker", migrate.WithThreshold(3))

	mkRuntime := func(id wire.NodeID) *core.Runtime {
		ep, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		node := kernelNodeForTest(t, ep)
		ktx, err := node.NewContext()
		if err != nil {
			t.Fatal(err)
		}
		// Retry fast: the link drops 2% of frames.
		rt := core.NewRuntime(ktx, core.WithClient(rpc.NewClient(ktx,
			rpc.WithRetryInterval(5*time.Millisecond), rpc.WithMaxAttempts(100))))
		rt.RegisterProxyType(naming.TypeName, dirFactory)
		rt.RegisterProxyType("CachedKV", kvCacheFactory)
		rt.RegisterProxyType("Worker", migFactory)
		host := migrate.NewHost(rt)
		host.RegisterType("Worker", func() migrate.Migratable { return bench.NewKV() })
		migFactory.AttachHost(rt, host)
		return rt
	}
	ns := mkRuntime(1)
	app := mkRuntime(2)
	worker := mkRuntime(3)
	ctx := context.Background()

	// 1. Stand up the name service and register the other services in it.
	dir := naming.NewDirectory()
	dirRef, err := ns.Export(dir, naming.TypeName)
	if err != nil {
		t.Fatal(err)
	}
	kvRef, err := app.Export(bench.NewKV(), "CachedKV")
	if err != nil {
		t.Fatal(err)
	}
	wkRef, err := app.Export(bench.NewKV(), "Worker")
	if err != nil {
		t.Fatal(err)
	}
	appDir, err := app.Import(dirRef)
	if err != nil {
		t.Fatal(err)
	}
	appNames := naming.NewClient(appDir)
	if err := appNames.Bind(ctx, "svc/kv", kvRef, 0); err != nil {
		t.Fatal(err)
	}
	if err := appNames.Bind(ctx, "svc/worker", wkRef, 0); err != nil {
		t.Fatal(err)
	}

	// 2. The worker node resolves everything by name through its own
	// (replicated) directory proxy.
	wDir, err := worker.Import(dirRef)
	if err != nil {
		t.Fatal(err)
	}
	wNames := naming.NewClient(wDir)
	names, err := wNames.List(ctx, "svc")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("names = %v", names)
	}

	// 3. Cached KV: write from app, read from worker (cold then warm).
	kvApp, err := app.Import(kvRef)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := kvApp.Invoke(ctx, "put", "cfg", int64(7)); err != nil {
		t.Fatal(err)
	}
	kvWorker, err := wNames.Resolve(ctx, worker, "svc/kv")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		res, err := kvWorker.Invoke(ctx, "get", "cfg")
		if err != nil {
			t.Fatal(err)
		}
		if res[0] != int64(7) {
			t.Fatalf("get = %v", res[0])
		}
	}
	if cp, ok := kvWorker.(*cache.Proxy); ok {
		if st := cp.Stats(); st.Hits < 3 {
			t.Errorf("cache stats = %+v, want warm hits", st)
		}
	} else {
		t.Errorf("kv proxy is %T, want caching", kvWorker)
	}

	// 4. Coherence across the composition: app writes, worker must see it.
	if _, err := kvApp.Invoke(ctx, "put", "cfg", int64(8)); err != nil {
		t.Fatal(err)
	}
	res, err := kvWorker.Invoke(ctx, "get", "cfg")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != int64(8) {
		t.Fatalf("stale read after coherent write: %v", res[0])
	}

	// 5. The worker hammers the migratable object until it migrates in,
	// then verifies the directory still resolves it (old ref forwards).
	wkProxy, err := wNames.Resolve(ctx, worker, "svc/worker")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := wkProxy.Invoke(ctx, "incr", "jobs"); err != nil {
			t.Fatal(err)
		}
	}
	if mp, ok := wkProxy.(*migrate.Proxy); ok {
		if !mp.IsLocal() {
			t.Error("worker object did not migrate to its heavy user")
		}
	} else {
		t.Errorf("worker proxy is %T", wkProxy)
	}
	// A fresh resolve through the (possibly stale) directory binding must
	// still reach the object wherever it lives now.
	again, err := appNames.Resolve(ctx, app, "svc/worker")
	if err != nil {
		t.Fatal(err)
	}
	res, err = again.Invoke(ctx, "get", "jobs")
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != int64(8) {
		t.Errorf("jobs = %v, want 8 (state survived migration)", res[0])
	}
}

// TestPartitionRecovery drives calls through a partition: they fail while
// the network is split and succeed after it heals, with at-most-once
// intact throughout.
func TestPartitionRecovery(t *testing.T) {
	net := netsim.New()
	defer net.Close()
	mk := func(id wire.NodeID) *core.Runtime {
		ep, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		node := kernelNodeForTest(t, ep)
		ktx, err := node.NewContext()
		if err != nil {
			t.Fatal(err)
		}
		return core.NewRuntime(ktx, core.WithClient(rpc.NewClient(ktx,
			rpc.WithRetryInterval(5*time.Millisecond), rpc.WithMaxAttempts(5))))
	}
	server, client := mk(1), mk(2)
	kv := bench.NewKV()
	ref, err := server.Export(kv, "KV")
	if err != nil {
		t.Fatal(err)
	}
	p, err := client.Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := p.Invoke(ctx, "incr", "n"); err != nil {
		t.Fatal(err)
	}

	net.Partition(1, 2)
	if _, err := p.Invoke(ctx, "incr", "n"); err == nil {
		t.Fatal("call succeeded across a partition")
	}
	net.Heal(1, 2)

	if _, err := p.Invoke(ctx, "incr", "n"); err != nil {
		t.Fatalf("call after heal: %v", err)
	}
	if got := kv.Get("n"); got != 2 {
		t.Errorf("n = %d, want 2 (partitioned call must not have half-applied)", got)
	}
}

// TestManyClientsManyServices is a load-shaped soak: several clients, all
// three smart proxy kinds, concurrent mixed traffic, zero tolerance for
// errors or divergence.
func TestManyClientsManyServices(t *testing.T) {
	net := netsim.New(netsim.WithSeed(3))
	defer net.Close()
	cacheF := cache.NewFactory(bench.KVReads())
	replF := replica.NewFactory(bench.KVReads(), func() replica.StateMachine { return bench.NewKV() })
	mk := func(id wire.NodeID) *core.Runtime {
		ep, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		node := kernelNodeForTest(t, ep)
		ktx, err := node.NewContext()
		if err != nil {
			t.Fatal(err)
		}
		rt := core.NewRuntime(ktx)
		rt.RegisterProxyType("Cached", cacheF)
		rt.RegisterProxyType("Replicated", replF)
		return rt
	}
	const clients = 6
	server := mk(1)
	cl := make([]*core.Runtime, clients)
	for i := range cl {
		cl[i] = mk(wire.NodeID(i + 2))
	}
	cachedRef, err := server.Export(bench.NewKV(), "Cached")
	if err != nil {
		t.Fatal(err)
	}
	replRef, err := server.Export(bench.NewKV(), "Replicated")
	if err != nil {
		t.Fatal(err)
	}
	stubKV := bench.NewKV()
	stubRef, err := server.Export(stubKV, "Plain")
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	errCh := make(chan error, clients*3)
	for i := 0; i < clients; i++ {
		for _, ref := range []struct {
			r    any
			name string
		}{{cachedRef, "cached"}, {replRef, "replicated"}, {stubRef, "plain"}} {
			wg.Add(1)
			go func(i int, name string, refAny any) {
				defer wg.Done()
				r := refAny.(interface{ IsZero() bool })
				_ = r
				wl := bench.Mixed{ReadFraction: 0.8, Ops: 60, Keys: 8, Seed: int64(i)}
				var p core.Proxy
				var err error
				switch name {
				case "cached":
					p, err = cl[i].Import(cachedRef)
				case "replicated":
					p, err = cl[i].Import(replRef)
				default:
					p, err = cl[i].Import(stubRef)
				}
				if err != nil {
					errCh <- fmt.Errorf("%s import: %w", name, err)
					return
				}
				if _, err := wl.Run(ctx, p); err != nil {
					errCh <- fmt.Errorf("%s client %d: %w", name, i, err)
				}
			}(i, ref.name, ref.r)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
