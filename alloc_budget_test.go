package repro_test

import (
	"context"
	"testing"

	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/core"
)

// Allocation budgets for the invocation fast path. These are enforced
// ceilings, not observations: the bypass proxy must stay at zero
// allocations per invocation, and the stub/cache paths must stay at or
// below the post-optimization budgets (each at least 30% under the
// pre-optimization counts recorded in bench.BaselineRows). A regression
// that reintroduces garbage on any of these paths fails here long before
// it would show in a latency benchmark.
//
// testing.AllocsPerRun counts allocations from every goroutine, so work
// shifted onto the netsim scheduler or the kernel pump still lands in
// the budget — "zero-allocation" means the whole system, not one
// goroutine's view.

// budgetCluster builds the E1 fixture: a KV exported from node 0's first
// context.
func budgetCluster(t *testing.T) (*bench.Cluster, *bench.KV) {
	t.Helper()
	if bench.RaceEnabled {
		t.Skip("alloc budgets are meaningless under -race (detector allocations are counted)")
	}
	c, err := bench.NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, bench.NewKV()
}

func TestAllocBudgetBypass(t *testing.T) {
	c, kv := budgetCluster(t)
	ref, err := c.RT(0).Export(kv, "KV")
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.RT(0).Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := p.Invoke(ctx, "noop"); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := p.Invoke(ctx, "noop"); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("bypass invocation allocates %.1f/op, budget is 0", allocs)
	}
}

func TestAllocBudgetSameNodeStub(t *testing.T) {
	c, kv := budgetCluster(t)
	ref, err := c.RT(0).Export(kv, "KV")
	if err != nil {
		t.Fatal(err)
	}
	rt2, err := c.NewContextRuntime(0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := rt2.Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := p.Invoke(ctx, "noop"); err != nil {
		t.Fatal(err)
	}
	// Pre-optimization this path cost 30 allocs/op; 21 is the enforced
	// 30%-under ceiling (measured: 19).
	const budget = 21.0
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := p.Invoke(ctx, "noop"); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > budget {
		t.Errorf("same-node stub invocation allocates %.1f/op, budget is %.0f", allocs, budget)
	}
}

func TestAllocBudgetCachedRead(t *testing.T) {
	c, _ := budgetCluster(t)
	factory := cache.NewFactory(bench.KVReads())
	c.RT(0).RegisterProxyType("KV", factory)
	c.RT(1).RegisterProxyType("KV", factory)
	ref, err := c.RT(0).Export(bench.NewKV(), "KV")
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.RT(1).Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Warm: the write settles the version, the read fills the cache.
	if _, err := p.Invoke(ctx, "put", "k", int64(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke(ctx, "get", "k"); err != nil {
		t.Fatal(err)
	}
	// Pre-optimization a warm hit cost 7 allocs/op; 4 is the enforced
	// ceiling (measured: 2 — the variadic args slice and the results).
	const budget = 4.0
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := p.Invoke(ctx, "get", "k"); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > budget {
		t.Errorf("warm cached read allocates %.1f/op, budget is %.0f", allocs, budget)
	}
}

var _ core.Proxy = (*cache.Proxy)(nil)
