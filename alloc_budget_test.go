package repro_test

import (
	"context"
	"testing"

	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/wire"
)

// Allocation budgets for the invocation fast path. These are enforced
// ceilings, not observations: the bypass proxy must stay at zero
// allocations per invocation, and the stub/cache paths must stay at or
// below the post-optimization budgets (each at least 30% under the
// pre-optimization counts recorded in bench.BaselineRows). A regression
// that reintroduces garbage on any of these paths fails here long before
// it would show in a latency benchmark.
//
// testing.AllocsPerRun counts allocations from every goroutine, so work
// shifted onto the netsim scheduler or the kernel pump still lands in
// the budget — "zero-allocation" means the whole system, not one
// goroutine's view.

// budgetCluster builds the E1 fixture: a KV exported from node 0's first
// context.
func budgetCluster(t *testing.T) (*bench.Cluster, *bench.KV) {
	t.Helper()
	if bench.RaceEnabled {
		t.Skip("alloc budgets are meaningless under -race (detector allocations are counted)")
	}
	c, err := bench.NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, bench.NewKV()
}

func TestAllocBudgetBypass(t *testing.T) {
	c, kv := budgetCluster(t)
	ref, err := c.RT(0).Export(kv, "KV")
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.RT(0).Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := p.Invoke(ctx, "noop"); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := p.Invoke(ctx, "noop"); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("bypass invocation allocates %.1f/op, budget is 0", allocs)
	}
}

func TestAllocBudgetSameNodeStub(t *testing.T) {
	c, kv := budgetCluster(t)
	ref, err := c.RT(0).Export(kv, "KV")
	if err != nil {
		t.Fatal(err)
	}
	rt2, err := c.NewContextRuntime(0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := rt2.Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := p.Invoke(ctx, "noop"); err != nil {
		t.Fatal(err)
	}
	// Pre-optimization this path cost 30 allocs/op; 21 is the enforced
	// 30%-under ceiling (measured: 19).
	const budget = 21.0
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := p.Invoke(ctx, "noop"); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > budget {
		t.Errorf("same-node stub invocation allocates %.1f/op, budget is %.0f", allocs, budget)
	}
}

func TestAllocBudgetCachedRead(t *testing.T) {
	c, _ := budgetCluster(t)
	factory := cache.NewFactory(bench.KVReads())
	c.RT(0).RegisterProxyType("KV", factory)
	c.RT(1).RegisterProxyType("KV", factory)
	ref, err := c.RT(0).Export(bench.NewKV(), "KV")
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.RT(1).Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Warm: the write settles the version, the read fills the cache.
	if _, err := p.Invoke(ctx, "put", "k", int64(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke(ctx, "get", "k"); err != nil {
		t.Fatal(err)
	}
	// Pre-optimization a warm hit cost 7 allocs/op; 4 is the enforced
	// ceiling (measured: 2 — the variadic args slice and the results).
	const budget = 4.0
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := p.Invoke(ctx, "get", "k"); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > budget {
		t.Errorf("warm cached read allocates %.1f/op, budget is %.0f", allocs, budget)
	}
}

// TestAllocBudgetTrainAssemble holds train assembly to zero allocations
// once the destination buffer has grown: AppendTrainMember must encode in
// place, because the coalescer calls it on every staged frame while
// holding the destination queue's lock.
func TestAllocBudgetTrainAssemble(t *testing.T) {
	if bench.RaceEnabled {
		t.Skip("alloc budgets are meaningless under -race (detector allocations are counted)")
	}
	f := &wire.Frame{
		Kind:    wire.KindRequest,
		ReqID:   1,
		Src:     wire.Addr{Node: 1, Context: 1},
		Dst:     wire.Addr{Node: 2, Context: 1},
		Object:  7,
		Payload: []byte("train-member-payload"),
	}
	buf := make([]byte, 0, 4096)
	allocs := testing.AllocsPerRun(200, func() {
		buf = buf[:0]
		for i := 0; i < 8; i++ {
			var err error
			if buf, err = wire.AppendTrainMember(buf, f); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Errorf("assembling an 8-member train allocates %.1f/train, budget is 0", allocs)
	}
}

// TestAllocBudgetTrainUnpack holds the receive-side walk to one
// allocation per train: ForEachTrainMember hoists a single Frame out of
// the member loop and member payloads alias the train payload, so fill
// count must not multiply garbage on the kernel pump.
func TestAllocBudgetTrainUnpack(t *testing.T) {
	if bench.RaceEnabled {
		t.Skip("alloc budgets are meaningless under -race (detector allocations are counted)")
	}
	f := &wire.Frame{
		Kind:    wire.KindRequest,
		Src:     wire.Addr{Node: 1, Context: 1},
		Dst:     wire.Addr{Node: 2, Context: 1},
		Object:  7,
		Payload: []byte("train-member-payload"),
	}
	var payload []byte
	for i := 0; i < 8; i++ {
		f.ReqID = uint64(i + 1)
		var err error
		if payload, err = wire.AppendTrainMember(payload, f); err != nil {
			t.Fatal(err)
		}
	}
	var seen int
	allocs := testing.AllocsPerRun(200, func() {
		members, rejected, err := wire.ForEachTrainMember(payload, func(m *wire.Frame) {
			seen += int(m.ReqID)
		})
		if err != nil || rejected != 0 || members != 8 {
			t.Fatalf("walk = (%d, %d, %v)", members, rejected, err)
		}
	})
	if allocs > 1 {
		t.Errorf("unpacking an 8-member train allocates %.1f/train, budget is 1 (the hoisted Frame)", allocs)
	}
	_ = seen
}

var _ core.Proxy = (*cache.Proxy)(nil)
