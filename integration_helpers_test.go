package repro

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/netsim"
)

// kernelNodeForTest wraps a node with cleanup.
func kernelNodeForTest(t *testing.T, ep netsim.Endpoint) *kernel.Node {
	t.Helper()
	node := kernel.NewNode(ep)
	t.Cleanup(func() { node.Close() })
	return node
}

// leakCheck fails the test if the goroutine count has not returned near
// its pre-test baseline once all cleanups have run. Call it FIRST in the
// test body: t.Cleanup is LIFO, so the check runs after every node,
// network, and runtime registered later has been torn down. The +5
// allowance covers the runtime's own background goroutines (GC, timer
// wheel) starting up mid-test.
func leakCheck(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= before+5 {
				return
			}
			time.Sleep(50 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d before, %d after teardown\n%s",
			before, runtime.NumGoroutine(), buf[:n])
	})
}
