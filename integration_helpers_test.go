package repro

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/netsim"
)

// kernelNodeForTest wraps a node with cleanup.
func kernelNodeForTest(t *testing.T, ep netsim.Endpoint) *kernel.Node {
	t.Helper()
	node := kernel.NewNode(ep)
	t.Cleanup(func() { node.Close() })
	return node
}
