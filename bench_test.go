package repro

// One testing.B benchmark per experiment in EXPERIMENTS.md. These measure
// the *key operation* of each experiment over a perfect (zero-latency)
// simulated network, so they expose protocol overhead rather than
// simulated wire time; cmd/proxybench runs the full sweeps with latency.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/cache"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/dsm"
	"repro/internal/migrate"
	"repro/internal/netsim"
	"repro/internal/pubsub"
	"repro/internal/replica"
	"repro/internal/rpc"
	"repro/internal/shard"
	"repro/internal/wire"
)

// mustCluster builds a cluster or aborts the benchmark.
func mustCluster(b *testing.B, n int, opts ...netsim.NetworkOption) *bench.Cluster {
	b.Helper()
	c, err := bench.NewCluster(n, opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	return c
}

func mustImport(b *testing.B, rt *core.Runtime, ref codec.Ref) core.Proxy {
	b.Helper()
	p, err := rt.Import(ref)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func mustExport(b *testing.B, rt *core.Runtime, svc core.Service, typ string) codec.Ref {
	b.Helper()
	ref, err := rt.Export(svc, typ)
	if err != nil {
		b.Fatal(err)
	}
	return ref
}

func invokeLoop(b *testing.B, p core.Proxy, method string, args ...any) {
	b.Helper()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Invoke(ctx, method, args...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1InvocationLadder: the four placements of a null invocation.
func BenchmarkE1InvocationLadder(b *testing.B) {
	c := mustCluster(b, 2)
	kv := bench.NewKV()
	ref := mustExport(b, c.RT(0), kv, "KV")

	b.Run("direct", func(b *testing.B) {
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			if _, err := kv.Invoke(ctx, "noop", nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bypass", func(b *testing.B) {
		invokeLoop(b, mustImport(b, c.RT(0), ref), "noop")
	})
	b.Run("cross-context", func(b *testing.B) {
		rt2, err := c.NewContextRuntime(0)
		if err != nil {
			b.Fatal(err)
		}
		invokeLoop(b, mustImport(b, rt2, ref), "noop")
	})
	b.Run("remote", func(b *testing.B) {
		invokeLoop(b, mustImport(b, c.RT(1), ref), "noop")
	})
}

// BenchmarkE2CacheCrossover: a warm cached read vs the stub read it
// replaces, plus the write path that keeps it coherent.
func BenchmarkE2CacheCrossover(b *testing.B) {
	factory := cache.NewFactory(bench.KVReads())
	c := mustCluster(b, 2)
	for _, rt := range c.Runtimes {
		rt.RegisterProxyType("KV", factory)
	}
	ref := mustExport(b, c.RT(0), bench.NewKV(), "KV")
	p := mustImport(b, c.RT(1), ref)
	ctx := context.Background()
	if _, err := p.Invoke(ctx, "put", "k", int64(1)); err != nil {
		b.Fatal(err)
	}

	b.Run("stub-read", func(b *testing.B) {
		stub := core.NewStub(c.RT(1), ref)
		invokeLoop(b, stub, "get", "k")
	})
	b.Run("cached-read", func(b *testing.B) {
		invokeLoop(b, p, "get", "k")
	})
	b.Run("coherent-write", func(b *testing.B) {
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.Invoke(ctx, "put", "k", int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE3MigrationCrossover: the op cost before and after the object
// migrates to its caller.
func BenchmarkE3MigrationCrossover(b *testing.B) {
	b.Run("remote-stub", func(b *testing.B) {
		c := mustCluster(b, 2)
		ref := mustExport(b, c.RT(0), bench.NewKV(), "KV")
		invokeLoop(b, mustImport(b, c.RT(1), ref), "incr", "hot")
	})
	b.Run("after-pull", func(b *testing.B) {
		c := mustCluster(b, 2)
		factory := migrate.NewFactory("KV", migrate.WithThreshold(1))
		for _, rt := range c.Runtimes {
			rt.RegisterProxyType("KV", factory)
			host := migrate.NewHost(rt)
			host.RegisterType("KV", func() migrate.Migratable { return bench.NewKV() })
			factory.AttachHost(rt, host)
		}
		ref := mustExport(b, c.RT(0), bench.NewKV(), "KV")
		p := mustImport(b, c.RT(1), ref)
		ctx := context.Background()
		// Trigger the pull before measuring.
		for i := 0; i < 3; i++ {
			if _, err := p.Invoke(ctx, "incr", "hot"); err != nil {
				b.Fatal(err)
			}
		}
		if !p.(*migrate.Proxy).IsLocal() {
			b.Fatal("object did not migrate")
		}
		invokeLoop(b, p, "incr", "hot")
	})
}

// BenchmarkE4ReplicaScaling: a replicated read vs the stub read.
func BenchmarkE4ReplicaScaling(b *testing.B) {
	factory := replica.NewFactory(bench.KVReads(), func() replica.StateMachine { return bench.NewKV() })
	c := mustCluster(b, 2)
	for _, rt := range c.Runtimes {
		rt.RegisterProxyType("KV", factory)
	}
	kv := bench.NewKV()
	if _, err := kv.Invoke(context.Background(), "put", []any{"k", int64(1)}); err != nil {
		b.Fatal(err)
	}
	ref := mustExport(b, c.RT(0), kv, "KV")
	p := mustImport(b, c.RT(1), ref)

	b.Run("stub-read", func(b *testing.B) {
		invokeLoop(b, core.NewStub(c.RT(1), ref), "get", "k")
	})
	b.Run("replica-read", func(b *testing.B) {
		invokeLoop(b, p, "get", "k")
	})
	b.Run("replicated-write", func(b *testing.B) {
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.Invoke(ctx, "put", "k", int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE5DesignSpace: one 90%-read mixed operation through each
// design.
func BenchmarkE5DesignSpace(b *testing.B) {
	run := func(b *testing.B, p core.Proxy) {
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			key := fmt.Sprintf("k%d", i%12)
			if i%10 == 0 {
				if _, err := p.Invoke(ctx, "put", key, int64(i)); err != nil {
					b.Fatal(err)
				}
			} else if _, err := p.Invoke(ctx, "get", key); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("rpc-stub", func(b *testing.B) {
		c := mustCluster(b, 2)
		ref := mustExport(b, c.RT(0), bench.NewKV(), "KV")
		run(b, mustImport(b, c.RT(1), ref))
	})
	b.Run("caching-proxy", func(b *testing.B) {
		c := mustCluster(b, 2)
		f := cache.NewFactory(bench.KVReads())
		for _, rt := range c.Runtimes {
			rt.RegisterProxyType("KV", f)
		}
		ref := mustExport(b, c.RT(0), bench.NewKV(), "KV")
		run(b, mustImport(b, c.RT(1), ref))
	})
	b.Run("replicated-proxy", func(b *testing.B) {
		c := mustCluster(b, 2)
		f := replica.NewFactory(bench.KVReads(), func() replica.StateMachine { return bench.NewKV() })
		for _, rt := range c.Runtimes {
			rt.RegisterProxyType("KV", f)
		}
		ref := mustExport(b, c.RT(0), bench.NewKV(), "KV")
		run(b, mustImport(b, c.RT(1), ref))
	})
	b.Run("dsm-page", func(b *testing.B) {
		c := mustCluster(b, 2)
		mgr := dsm.NewManager(c.RT(0), dsm.WithPageSize(64))
		ag := dsm.NewAgent(c.RT(1), mgr.Addr())
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			page := dsm.PageID(i % 12)
			if i%10 == 0 {
				if err := ag.Write(ctx, page, func(p []byte) { p[0] = byte(i) }); err != nil {
					b.Fatal(err)
				}
			} else if _, err := ag.Read(ctx, page); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// e6BenchSpawner mirrors the E6 experiment service.
type e6BenchSpawner struct{ next int64 }

type e6BenchRoom struct{ id int64 }

func (r *e6BenchRoom) Invoke(ctx context.Context, method string, args []any) ([]any, error) {
	return []any{r.id}, nil
}

func (r *e6BenchRoom) ProxyType() string { return "E6Room" }

func (s *e6BenchSpawner) Invoke(ctx context.Context, method string, args []any) ([]any, error) {
	n, _ := args[0].(int64)
	out := make([]any, n)
	for i := range out {
		s.next++
		out[i] = &e6BenchRoom{id: s.next}
	}
	return []any{out}, nil
}

// BenchmarkE6RefExport: one invocation whose reply exports 8 references,
// each installed as a proxy at the importer.
func BenchmarkE6RefExport(b *testing.B) {
	c := mustCluster(b, 2)
	ref := mustExport(b, c.RT(0), &e6BenchSpawner{}, "Spawner")
	p := mustImport(b, c.RT(1), ref)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := p.Invoke(ctx, "spawn", int64(8))
		if err != nil {
			b.Fatal(err)
		}
		if len(res[0].([]any)) != 8 {
			b.Fatal("short spawn")
		}
	}
}

// BenchmarkE7AtMostOnce: a reliable call over a 10%-loss link.
func BenchmarkE7AtMostOnce(b *testing.B) {
	c := mustCluster(b, 2,
		netsim.WithDefaultLink(netsim.LinkConfig{LossRate: 0.10}),
		netsim.WithSeed(1))
	srv := rpc.NewServer(rpc.HandlerFunc(func(req *rpc.Request) (wire.Kind, []byte, []byte) {
		return wire.KindReply, nil, nil
	}))
	id := c.RT(0).Kernel().Register(srv)
	dst := wire.ObjAddr{Addr: c.RT(0).Addr(), Object: id}
	client := rpc.NewClient(c.RT(1).Kernel(),
		rpc.WithRetryInterval(time.Millisecond), rpc.WithMaxAttempts(100))
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Call(ctx, dst, wire.KindRequest, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8Marshalling: encode+decode of a 4 KiB argument vector.
func BenchmarkE8Marshalling(b *testing.B) {
	payload := make([]byte, 4<<10)
	for i := range payload {
		payload[i] = byte(i)
	}
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := codec.EncodeArgs("echo", payload, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := codec.DecodeArgs(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9ForwardingChains: invoking through a 4-tombstone chain, fresh
// stub per call (uncompressed) vs a rebound stub (compressed).
func BenchmarkE9ForwardingChains(b *testing.B) {
	const k = 4
	c := mustCluster(b, k+2)
	hosts := make([]*migrate.Host, k+1)
	for i := 0; i <= k; i++ {
		hosts[i] = migrate.NewHost(c.RT(i))
		hosts[i].RegisterType("KV", func() migrate.Migratable { return bench.NewKV() })
	}
	svc := bench.NewKV()
	origRef := mustExport(b, c.RT(0), svc, "KV")
	ctx := context.Background()
	var cur migrate.Migratable = svc
	curRT := c.RT(0)
	for hop := 1; hop <= k; hop++ {
		newRef, err := migrate.Move(ctx, curRT, cur, "KV", "KV", hosts[hop].Addr())
		if err != nil {
			b.Fatal(err)
		}
		next, ok := c.RT(hop).LocalService(newRef)
		if !ok {
			b.Fatal("lost the object mid-chain")
		}
		cur = next.(*bench.KV)
		curRT = c.RT(hop)
	}
	client := c.RT(k + 1)

	b.Run("uncompressed", func(b *testing.B) {
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			stub := core.NewStub(client, codec.Ref{Target: origRef.Target, Type: origRef.Type})
			if _, err := stub.Invoke(ctx, "noop"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compressed", func(b *testing.B) {
		stub := core.NewStub(client, codec.Ref{Target: origRef.Target, Type: origRef.Type})
		if _, err := stub.Invoke(context.Background(), "noop"); err != nil {
			b.Fatal(err)
		}
		invokeLoop(b, stub, "noop")
	})
}

// BenchmarkE10InvalidationStorm: one write with 8 warm sharers, sync vs
// async invalidation.
func BenchmarkE10InvalidationStorm(b *testing.B) {
	run := func(b *testing.B, opts ...cache.FactoryOption) {
		const sharers = 8
		factory := cache.NewFactory(bench.KVReads(), opts...)
		c := mustCluster(b, sharers+2)
		for _, rt := range c.Runtimes {
			rt.RegisterProxyType("KV", factory)
		}
		ref := mustExport(b, c.RT(0), bench.NewKV(), "KV")
		writer := mustImport(b, c.RT(1), ref)
		readers := make([]core.Proxy, sharers)
		for i := range readers {
			readers[i] = mustImport(b, c.RT(i+2), ref)
		}
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			for _, r := range readers {
				if _, err := r.Invoke(ctx, "get", "hot"); err != nil {
					b.Fatal(err)
				}
			}
			b.StartTimer()
			if _, err := writer.Invoke(ctx, "put", "hot", int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("sync", func(b *testing.B) { run(b) })
	b.Run("async", func(b *testing.B) { run(b, cache.WithAsyncInvalidation()) })
}

// BenchmarkCapabilityCheck: the per-invocation cost of the protection
// boundary — a protected export verifies an unforgeable token on every
// call.
func BenchmarkCapabilityCheck(b *testing.B) {
	run := func(b *testing.B, opts ...core.ExportOption) {
		c := mustCluster(b, 2)
		ref, err := c.RT(0).Export(bench.NewKV(), "KV", opts...)
		if err != nil {
			b.Fatal(err)
		}
		invokeLoop(b, mustImport(b, c.RT(1), ref), "noop")
	}
	b.Run("unprotected", func(b *testing.B) { run(b) })
	b.Run("protected", func(b *testing.B) { run(b, core.Protected()) })
}

// BenchmarkE11Batching: one-way append through the batching proxy
// (amortized) vs through a stub (one round trip each).
func BenchmarkE11Batching(b *testing.B) {
	sink := core.ServiceFunc(func(ctx context.Context, method string, args []any) ([]any, error) {
		return nil, nil
	})
	b.Run("stub", func(b *testing.B) {
		c := mustCluster(b, 2)
		ref := mustExport(b, c.RT(0), sink, "Log")
		invokeLoop(b, mustImport(b, c.RT(1), ref), "append", "x")
	})
	b.Run("batched-32", func(b *testing.B) {
		c := mustCluster(b, 2)
		factory := core.NewBatchFactory([]string{"append"},
			core.WithBatchSize(32), core.WithBatchInterval(0))
		c.RT(1).RegisterProxyType("Log", factory)
		ref := mustExport(b, c.RT(0), sink, "Log")
		p := mustImport(b, c.RT(1), ref)
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.Invoke(ctx, "append", "x"); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if err := p.(*core.BatchProxy).Flush(ctx); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkE14Sharding: the sharded proxy's key operations over a
// 2-member deployment — a routed single-key write (table lookup + one
// member invocation) and an 8-key scatter-gather read.
func BenchmarkE14Sharding(b *testing.B) {
	c := mustCluster(b, 4)
	spec := bench.KVShardSpec()
	sf := shard.NewFactory(spec, shard.WithName("bench"))
	router := shard.NewRouter(c.RT(0), sf)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("m%d", i)
		ref := mustExport(b, c.RT(i+1), shard.NewGuard(name, spec, bench.NewKV()), "KVShard")
		if err := router.AddMember(ctx, name, ref); err != nil {
			b.Fatal(err)
		}
	}
	ref, err := c.RT(0).ExportVia(sf, router, "ShardedKV")
	if err != nil {
		b.Fatal(err)
	}
	c.RT(3).RegisterProxyType("ShardedKV", shard.NewFactory(shard.Spec{}))
	p := mustImport(b, c.RT(3), ref)
	keys := make([]any, 8)
	for i := range keys {
		k := fmt.Sprintf("k%d", i)
		keys[i] = k
		if _, err := p.Invoke(ctx, "put", k, int64(i)); err != nil {
			b.Fatal(err)
		}
	}

	b.Run("routed-write", func(b *testing.B) {
		invokeLoop(b, p, "put", "k0", int64(1))
	})
	b.Run("scatter-mget-8", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.Invoke(ctx, "mget", keys...); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE12PubSubFanout: one publish with 8 subscribers, measured to
// full delivery.
func BenchmarkE12PubSubFanout(b *testing.B) {
	const subs = 8
	c := mustCluster(b, subs+2)
	topic := pubsub.NewTopic("bench")
	b.Cleanup(topic.Close)
	topicRef := mustExport(b, c.RT(0), topic, pubsub.TypeName)
	client := pubsub.NewClient(mustImport(b, c.RT(1), topicRef))
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < subs; i++ {
		rt := c.RT(i + 2)
		cbRef := mustExport(b, rt, pubsub.NewCallback(func(string, any) { wg.Done() }), pubsub.SubscriberType)
		cbProxy := mustImport(b, rt, cbRef)
		if _, err := client.Subscribe(ctx, cbProxy); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wg.Add(subs)
		if err := client.Publish(ctx, int64(i)); err != nil {
			b.Fatal(err)
		}
		wg.Wait()
	}
}
