package repro

// Sharded-keyspace chaos: kill a shard owner's node in the middle of a
// rebalance while a client drives writes through the sharded proxy. The
// invariants under test are the ones DESIGN.md promises for replica-backed
// shards: the rebalance eventually commits against the member group's
// promoted primary, every acknowledged write stays readable through the
// sharded proxy (and is provably durable in a surviving group member's
// WAL), and deposed owners are fenced — a handoff step replayed at a
// stale epoch is refused with CodeFenced instead of resurrecting old
// ownership. Seeded like the rest of the suite: CHAOS_SEED=<n> replays
// a failing schedule exactly.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/replica"
	"repro/internal/rpc"
	"repro/internal/shard"
	"repro/internal/wire"
)

// chaosShardWorld is a chaos cluster running one sharded KV deployment
// whose members are replica groups, so a shard survives its own
// primary's crash:
//
//	node 1  router (shard control plane)
//	node 2  member s0 primary     node 3  member s0 standby
//	node 4  member s1 primary     node 5  member s1 standby
//	node 6  client
//
// Every runtime registers every member's replica factory, so the router
// and the client reach members through failover-aware replica proxies —
// the layering the sharding design prescribes: the shard guard IS the
// replicated state machine, and routing rides replication.
type chaosShardWorld struct {
	c      *chaosCluster
	spec   shard.Spec
	sf     *shard.Factory
	router *shard.Router
	ref    codec.Ref

	storeMu sync.Mutex
	stores  map[string]map[wire.Addr]*persist.MemStore // member -> node -> WAL
}

func newChaosShardWorld(t *testing.T) *chaosShardWorld {
	t.Helper()
	w := &chaosShardWorld{
		spec:   bench.KVShardSpec(),
		stores: make(map[string]map[wire.Addr]*persist.MemStore),
	}
	// Same rpc budget as the replica chaos suite: long enough to ride out
	// a delivery round, short enough to fail conclusively on dead nodes.
	w.c = newChaosCluster(t, 6,
		[]rpc.ClientOption{rpc.WithRetryInterval(5 * time.Millisecond), rpc.WithMaxAttempts(60)})
	w.sf = shard.NewFactory(w.spec, shard.WithName("chaoskv"))
	w.router = shard.NewRouter(w.c.rts[0], w.sf)
	ref, err := w.c.rts[0].ExportVia(w.sf, w.router, "ChaosShardedKV")
	if err != nil {
		t.Fatal(err)
	}
	w.ref = ref
	w.c.rts[5].RegisterProxyType("ChaosShardedKV", shard.NewFactory(shard.Spec{}))
	return w
}

// newMember builds one replica-backed shard member: the guard wrapping a
// fresh KV is the group's state machine, exported on the primary's
// runtime; the standby joins first so it is the deterministic successor.
// The member's WAL stores are captured per node for the durability audit.
func (w *chaosShardWorld) newMember(t *testing.T, name string, primary, standby int) codec.Ref {
	t.Helper()
	spec := w.spec
	f := replica.NewFactory(bench.KVReads(),
		func() replica.StateMachine { return shard.NewGuard(name, spec, bench.NewKV()) },
		replica.WithDeliverTimeout(80*time.Millisecond),
		replica.WithSyncInterval(25*time.Millisecond),
		replica.WithSnapshotEvery(8),
		replica.WithName("chaoskv-"+name),
		replica.WithWALStore(func(node wire.Addr) persist.LogStore {
			w.storeMu.Lock()
			defer w.storeMu.Unlock()
			byNode := w.stores[name]
			if byNode == nil {
				byNode = make(map[wire.Addr]*persist.MemStore)
				w.stores[name] = byNode
			}
			if s, ok := byNode[node]; ok {
				return s
			}
			s := persist.NewMemStore(nil)
			byNode[node] = s
			return s
		}))
	typeName := "ChaosShardKV." + name
	for _, rt := range w.c.rts {
		rt.RegisterProxyType(typeName, f)
	}
	ref, err := w.c.rts[primary].Export(shard.NewGuard(name, spec, bench.NewKV()), typeName)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.c.rts[standby].Import(ref); err != nil {
		t.Fatal(err)
	}
	return ref
}

func (w *chaosShardWorld) admit(t *testing.T, name string, ref codec.Ref) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := w.router.AddMember(ctx, name, ref); err != nil {
		t.Fatalf("admit %s: %v", name, err)
	}
}

func (w *chaosShardWorld) proxy(t *testing.T) *shard.Proxy {
	t.Helper()
	p, err := w.c.rts[5].Import(w.ref)
	if err != nil {
		t.Fatal(err)
	}
	sp, ok := p.(*shard.Proxy)
	if !ok {
		t.Fatalf("client proxy is %T, want *shard.Proxy", p)
	}
	return sp
}

// walShardReconstruct rebuilds a member's guarded state from what its WAL
// proves durable: last snapshot plus the logged suffix, replayed through
// a fresh guard so ownership and fencing rules replay exactly as they
// were accepted.
func walShardReconstruct(t *testing.T, rt *core.Runtime, member string, spec shard.Spec, store persist.LogStore) *shard.Guard {
	t.Helper()
	wal, err := persist.OpenWAL(store)
	if err != nil {
		t.Fatalf("open %s wal for audit: %v", member, err)
	}
	g := shard.NewGuard(member, spec, bench.NewKV())
	if _, _, state, ok := wal.LastSnapshot(); ok {
		// WAL snapshots are combined [dedup table][service state] blobs
		// (replica/dedup.go); the guard restores the service half.
		_, svcState := replica.SplitSnapshotState(state)
		if err := g.Restore(svcState); err != nil {
			t.Fatalf("restore %s wal snapshot: %v", member, err)
		}
	}
	for _, r := range wal.Records() {
		_, method, args, err := core.DecodeRequest(rt.Decoder(), r.Payload)
		if err != nil {
			t.Fatalf("%s wal record %d undecodable: %v", member, r.Seq, err)
		}
		if _, err := g.Invoke(context.Background(), method, args); err != nil {
			t.Fatalf("%s wal replay of %q: %v", member, method, err)
		}
	}
	return g
}

// TestChaosShardOwnerCrashMidRebalance admits a second shard and crashes
// the first shard's primary node while the handoff is in flight. The
// rebalance must land once the standby promotes, writes must resume and
// spread across both shards, every acknowledged write must remain
// readable through the sharded proxy and durable in a surviving WAL, and
// when the deposed node returns, stale-epoch handoff steps are fenced.
func TestChaosShardOwnerCrashMidRebalance(t *testing.T) {
	leakCheck(t)
	seed := chaosSeed()
	w := newChaosShardWorld(t)
	s0 := w.newMember(t, "s0", 1, 2)
	w.admit(t, "s0", s0)
	p := w.proxy(t)
	ctx := context.Background()

	acked := make(map[string]int64)
	var seq int64
	write := func(budget time.Duration) bool {
		seq++
		key, val := fmt.Sprintf("w%d", seq), seq
		wctx, cancel := context.WithTimeout(ctx, budget)
		defer cancel()
		if _, err := p.Invoke(wctx, "put", key, val); err != nil {
			return false
		}
		acked[key] = val
		return true
	}
	for i := 0; i < 30; i++ {
		if !write(5 * time.Second) {
			t.Fatalf("healthy write %d failed", i)
		}
	}

	// Admit the second member, crashing s0's primary mid-rebalance at a
	// seeded offset.
	s1 := w.newMember(t, "s1", 3, 4)
	done := make(chan error, 1)
	go func() {
		actx, cancel := context.WithTimeout(ctx, 30*time.Second)
		defer cancel()
		done <- w.router.AddMember(actx, "s1", s1)
	}()
	time.Sleep(time.Duration(5+seed%40) * time.Millisecond)
	w.c.net.Crash(2)

	if err := <-done; err != nil {
		// The crash beat the handoff. Each retry runs under a fresh
		// epoch; it must commit once the standby promotes.
		t.Logf("AddMember during crash: %v (retrying)", err)
		chaosWaitFor(t, 45*time.Second, "rebalance to commit against the promoted primary", func() bool {
			actx, cancel := context.WithTimeout(ctx, 10*time.Second)
			defer cancel()
			return w.router.AddMember(actx, "s1", s1) == nil
		})
	}
	if got := w.router.Epoch(); got < 2 {
		t.Fatalf("epoch after admitting s1 = %d, want >= 2", got)
	}
	if got := w.router.Members(); len(got) != 2 {
		t.Fatalf("members after rebalance = %v, want [s0 s1]", got)
	}

	// Writes resume through the promoted primary and the new member.
	chaosWaitFor(t, 30*time.Second, "writes to resume after the crash", func() bool {
		return write(3 * time.Second)
	})
	for i := 0; i < 30; i++ {
		chaosWaitFor(t, 15*time.Second, "post-rebalance write to ack", func() bool {
			return write(3 * time.Second)
		})
	}

	// Zero lost acked writes, end to end: every acknowledged put reads
	// back at its value through the sharded proxy.
	chaosWaitFor(t, 30*time.Second, "every acked write to be readable", func() bool {
		for key, want := range acked {
			rctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			res, err := p.Invoke(rctx, "get", key)
			cancel()
			if err != nil || len(res) != 1 || res[0] != want {
				return false
			}
		}
		return true
	})

	// Durability audit: reconstruct each shard's state from a surviving
	// group node's WAL; together they must hold every acked write.
	w.storeMu.Lock()
	s0store := w.stores["s0"][w.c.rts[2].Addr()] // promoted standby
	s1store := w.stores["s1"][w.c.rts[3].Addr()] // s1 primary
	w.storeMu.Unlock()
	if s0store == nil || s1store == nil {
		t.Fatalf("missing WAL stores for audit (s0=%v s1=%v)", s0store != nil, s1store != nil)
	}
	g0 := walShardReconstruct(t, w.c.rts[2], "s0", w.spec, s0store)
	g1 := walShardReconstruct(t, w.c.rts[3], "s1", w.spec, s1store)
	kv0, kv1 := g0.Inner().(*bench.KV), g1.Inner().(*bench.KV)
	for key, want := range acked {
		if kv0.Get(key) != want && kv1.Get(key) != want {
			t.Errorf("acked write %s=%d missing from every surviving WAL", key, want)
		}
	}

	// The deposed node returns; a handoff step replayed at a stale epoch
	// is fenced, not honored.
	w.c.net.Restart(2)
	mp, err := w.c.rts[5].Import(s0)
	if err != nil {
		t.Fatal(err)
	}
	fctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	_, err = mp.Invoke(fctx, "shard.keys", int64(1))
	if err == nil {
		t.Fatal("stale-epoch shard.keys was accepted, want CodeFenced")
	}
	var ie *core.InvokeError
	if !errors.As(err, &ie) || ie.Code != core.CodeFenced {
		t.Fatalf("stale-epoch shard.keys: got %v, want CodeFenced", err)
	}

	// And the returned zombie does not disturb the service.
	chaosWaitFor(t, 30*time.Second, "writes to keep flowing after the zombie returns", func() bool {
		return write(3 * time.Second)
	})
}

// TestChaosShardDeadMemberForceRemove crashes a plain (unreplicated)
// member's node and walks the two removal paths: safe removal refuses to
// commit because the dead member cannot hand its ranges off, while forced
// removal commits a shrunken table — surviving keys keep their values and
// the dead member's keys read as zero through re-routed stale clients:
// declared loss, never silent misdirection.
func TestChaosShardDeadMemberForceRemove(t *testing.T) {
	leakCheck(t)
	c := newChaosCluster(t, 5,
		[]rpc.ClientOption{rpc.WithRetryInterval(5 * time.Millisecond), rpc.WithMaxAttempts(20)})
	spec := bench.KVShardSpec()
	sf := shard.NewFactory(spec, shard.WithName("chaos-plain"))
	router := shard.NewRouter(c.rts[0], sf)
	ctx := context.Background()
	for i, name := range []string{"m0", "m1", "m2"} {
		ref, err := c.rts[i+1].Export(shard.NewGuard(name, spec, bench.NewKV()), "ChaosPlainShard")
		if err != nil {
			t.Fatal(err)
		}
		actx, cancel := context.WithTimeout(ctx, 20*time.Second)
		err = router.AddMember(actx, name, ref)
		cancel()
		if err != nil {
			t.Fatalf("admit %s: %v", name, err)
		}
	}
	ref, err := c.rts[0].ExportVia(sf, router, "ChaosPlainShardedKV")
	if err != nil {
		t.Fatal(err)
	}
	c.rts[4].RegisterProxyType("ChaosPlainShardedKV", shard.NewFactory(shard.Spec{}))
	pp, err := c.rts[4].Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	p := pp.(*shard.Proxy)

	oldRing := shard.NewRing([]string{"m0", "m1", "m2"}, shard.DefaultVirtualNodes)
	acked := make(map[string]int64)
	lost := 0
	for i := 0; i < 60; i++ {
		key, val := fmt.Sprintf("f%d", i), int64(i+1)
		wctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		_, err := p.Invoke(wctx, "put", key, val)
		cancel()
		if err != nil {
			t.Fatalf("healthy write %s: %v", key, err)
		}
		acked[key] = val
		if oldRing.Owner(key) == "m2" {
			lost++
		}
	}
	if lost == 0 {
		t.Fatal("no keys landed on m2; ring distribution degenerate")
	}

	c.net.Crash(4) // m2's node

	// Safe removal must refuse: the dead member cannot drain.
	rctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	err = router.RemoveMember(rctx, "m2", false)
	cancel()
	if err == nil {
		t.Fatal("non-force removal of a dead member succeeded, want refusal")
	}
	if got := router.Members(); len(got) != 3 {
		t.Fatalf("failed removal changed membership: %v", got)
	}

	// Forced removal commits, declaring the dead member's ranges lost.
	rctx, cancel = context.WithTimeout(ctx, 30*time.Second)
	err = router.RemoveMember(rctx, "m2", true)
	cancel()
	if err != nil {
		t.Fatalf("forced removal: %v", err)
	}
	if got := router.Members(); len(got) != 2 {
		t.Fatalf("members after forced removal = %v, want [m0 m1]", got)
	}

	// The stale client re-routes off the dead member: surviving keys keep
	// their values, m2's keys read as zero.
	chaosWaitFor(t, 30*time.Second, "stale client to converge on the shrunken table", func() bool {
		for key, want := range acked {
			if oldRing.Owner(key) == "m2" {
				want = 0
			}
			rctx2, cancel2 := context.WithTimeout(ctx, 3*time.Second)
			res, err2 := p.Invoke(rctx2, "get", key)
			cancel2()
			if err2 != nil || len(res) != 1 || res[0] != want {
				return false
			}
		}
		return true
	})
}
