package repro

// Replica-group chaos: crash the primary (or a replica) mid-write-load
// and assert the self-healing invariants end to end — a deterministic
// successor promotes itself, no acknowledged write is ever lost (audited
// against the new primary's write-ahead log), the deposed primary cannot
// acknowledge anything after fencing, and crashed-then-restarted members
// rejoin and converge. Seeded like the rest of the chaos suite:
// CHAOS_SEED=<n> go test -race -run TestChaos .

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/replica"
	"repro/internal/rpc"
	"repro/internal/wire"
)

// chaosReg is the replicated state machine under test: a register map.
type chaosReg struct {
	mu sync.Mutex
	m  map[string]int64
}

func newChaosReg() *chaosReg { return &chaosReg{m: make(map[string]int64)} }

func (s *chaosReg) Invoke(ctx context.Context, method string, args []any) ([]any, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch method {
	case "get":
		k, _ := args[0].(string)
		return []any{s.m[k]}, nil
	case "put":
		k, _ := args[0].(string)
		v, _ := args[1].(int64)
		s.m[k] = v
		return []any{v}, nil
	default:
		return nil, core.NoSuchMethod(method)
	}
}

func (s *chaosReg) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return codec.Marshal(s.m)
}

func (s *chaosReg) Restore(data []byte) error {
	var m map[string]int64
	if err := codec.Unmarshal(data, &m); err != nil {
		return err
	}
	if m == nil {
		m = make(map[string]int64)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m = m
	return nil
}

func (s *chaosReg) get(k string) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[k]
	return v, ok
}

// chaosRepWorld is a chaos cluster with a replica factory whose WAL
// stores are captured per node so tests can audit the logs afterwards.
type chaosRepWorld struct {
	c       *chaosCluster
	factory *replica.Factory
	ref     codec.Ref

	storeMu sync.Mutex
	stores  map[wire.Addr]*persist.MemStore
}

func newChaosRepWorld(t *testing.T, n int) *chaosRepWorld {
	t.Helper()
	w := &chaosRepWorld{stores: make(map[wire.Addr]*persist.MemStore)}
	// The rpc budget (~300ms of 5ms retries) must outlive the primary's
	// delivery timeout, while still failing conclusively on dead nodes
	// well inside the repair probe's patience.
	w.c = newChaosCluster(t, n,
		[]rpc.ClientOption{rpc.WithRetryInterval(5 * time.Millisecond), rpc.WithMaxAttempts(60)})
	w.factory = replica.NewFactory([]string{"get"},
		func() replica.StateMachine { return newChaosReg() },
		replica.WithDeliverTimeout(80*time.Millisecond),
		replica.WithSyncInterval(25*time.Millisecond),
		replica.WithSnapshotEvery(8),
		replica.WithName("chaos-reg"),
		replica.WithWALStore(func(node wire.Addr) persist.LogStore {
			w.storeMu.Lock()
			defer w.storeMu.Unlock()
			if s, ok := w.stores[node]; ok {
				return s
			}
			s := persist.NewMemStore(nil)
			w.stores[node] = s
			return s
		}))
	for _, rt := range w.c.rts {
		rt.RegisterProxyType("ChaosReg", w.factory)
	}
	ref, err := w.c.rts[0].Export(newChaosReg(), "ChaosReg")
	if err != nil {
		t.Fatal(err)
	}
	w.ref = ref
	return w
}

func (w *chaosRepWorld) proxy(t *testing.T, i int) *replica.Proxy {
	t.Helper()
	p, err := w.c.rts[i].Import(w.ref)
	if err != nil {
		t.Fatal(err)
	}
	return p.(*replica.Proxy)
}

// walReconstruct rebuilds the state a WAL store proves durable: last
// snapshot plus logged suffix.
func walReconstruct(t *testing.T, rt *core.Runtime, store persist.LogStore) *chaosReg {
	t.Helper()
	wal, err := persist.OpenWAL(store)
	if err != nil {
		t.Fatalf("open wal for audit: %v", err)
	}
	reg := newChaosReg()
	if _, _, state, ok := wal.LastSnapshot(); ok {
		// WAL snapshots are combined [dedup table][service state] blobs
		// (replica/dedup.go); the audit restores the service half.
		_, svcState := replica.SplitSnapshotState(state)
		if err := reg.Restore(svcState); err != nil {
			t.Fatalf("restore wal snapshot: %v", err)
		}
	}
	for _, r := range wal.Records() {
		_, method, args, err := core.DecodeRequest(rt.Decoder(), r.Payload)
		if err != nil {
			t.Fatalf("wal record %d undecodable: %v", r.Seq, err)
		}
		if _, err := reg.Invoke(context.Background(), method, args); err != nil {
			t.Fatalf("wal replay of %q: %v", method, err)
		}
	}
	return reg
}

// holdsAll reports whether reg contains every acked key at its value.
func holdsAll(reg *chaosReg, acked map[string]int64) bool {
	for key, want := range acked {
		if got, ok := reg.get(key); !ok || got != want {
			return false
		}
	}
	return true
}

func chaosWaitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	end := time.Now().Add(d)
	for time.Now().Before(end) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestChaosPrimaryPromotion kills the primary's node mid-write-load and
// asserts the full failover story: the first-joined survivor promotes
// itself under epoch 2, writes resume through every surviving proxy, no
// acknowledged write is lost (verified against the new primary's WAL),
// and when the old primary's node comes back it is fenced on its first
// delivery — a late client that joined the zombie is bounced with
// CodeFenced and re-routes to the new primary.
func TestChaosPrimaryPromotion(t *testing.T) {
	leakCheck(t)
	seed := chaosSeed()
	w := newChaosRepWorld(t, 4)
	ctx := context.Background()
	p2 := w.proxy(t, 1) // first joiner: the deterministic successor
	p3 := w.proxy(t, 2)
	proxies := []*replica.Proxy{p2, p3}

	acked := make(map[string]int64)
	var seq int64
	write := func(p *replica.Proxy) error {
		key := fmt.Sprintf("w%d", seq)
		_, err := p.Invoke(ctx, "put", key, seq)
		if err == nil {
			acked[key] = seq
		}
		seq++
		return err
	}

	// Seeded pre-crash load; every write must succeed while the group is
	// whole.
	preWrites := 15 + int(seed%10)
	for i := 0; i < preWrites; i++ {
		if err := write(proxies[i%2]); err != nil {
			t.Fatalf("pre-crash write %d: %v", i, err)
		}
	}

	w.c.net.Crash(1)

	// Keep the load running through the outage; writes fail until the
	// successor promotes, then start landing again.
	chaosWaitFor(t, 10*time.Second, "successor to promote and accept writes", func() bool {
		_ = write(proxies[int(seq)%2])
		return p2.IsPrimary()
	})
	if got := p2.Epoch(); got < 2 {
		t.Fatalf("promoted epoch = %d, want >= 2", got)
	}
	chaosWaitFor(t, 10*time.Second, "survivor to adopt the new primary", func() bool {
		return p3.Epoch() >= 2 && !p3.IsPrimary()
	})
	// Post-failover load through both surviving proxies must all ack.
	for i := 0; i < 10; i++ {
		if err := write(proxies[i%2]); err != nil {
			t.Fatalf("post-failover write: %v", err)
		}
	}

	// Zero lost acknowledged writes: every acked key is in both
	// survivors' local copies. (A promoted proxy applies through the
	// primary's shared state machine, not its old member, so state — not
	// AppliedSeq — is the convergence signal here.)
	for _, p := range proxies {
		reg := p.Local().(*chaosReg)
		chaosWaitFor(t, 5*time.Second, "survivor to hold every acked write", func() bool {
			return holdsAll(reg, acked)
		})
		for key, want := range acked {
			if got, ok := reg.get(key); !ok || got != want {
				t.Fatalf("acked write %s=%d missing from a survivor (got %d, present=%v)", key, want, got, ok)
			}
		}
	}
	// ...and every acked key is durable in the new primary's write-ahead
	// log (append-before-ack held across the promotion).
	w.storeMu.Lock()
	store := w.stores[w.c.rts[1].Addr()]
	w.storeMu.Unlock()
	if store == nil {
		t.Fatal("promoted primary opened no WAL store")
	}
	audit := walReconstruct(t, w.c.rts[1], store)
	for key, want := range acked {
		if got, ok := audit.get(key); !ok || got != want {
			t.Fatalf("acked write %s=%d not recoverable from the new primary's WAL", key, want)
		}
	}

	// Restart the old primary's node: the deposed primary is now a
	// zombie. A late client importing the original reference joins it —
	// and its first write is fenced, never acknowledged, after which the
	// repair loop re-routes the client to the real primary.
	w.c.net.Restart(1)
	stale := w.proxy(t, 3)
	_, err := stale.Invoke(ctx, "put", "fenced-write", int64(-1))
	var ie *core.InvokeError
	if !errors.As(err, &ie) || ie.Code != core.CodeFenced {
		t.Fatalf("write through deposed primary = %v, want CodeFenced", err)
	}
	chaosWaitFor(t, 10*time.Second, "stale client to re-route to the new primary", func() bool {
		return stale.Epoch() >= 2
	})
	chaosWaitFor(t, 10*time.Second, "re-routed client write to succeed", func() bool {
		_, err := stale.Invoke(ctx, "put", "rerouted", int64(1))
		return err == nil
	})
	if got, ok := p2.Local().(*chaosReg).get("fenced-write"); ok {
		t.Errorf("fenced write leaked into the new group: %d", got)
	}
	t.Logf("seed %d: %d writes issued, %d acked, promotion epoch %d", seed, seq, len(acked), p2.Epoch())
}

// TestChaosReplicaCrashRejoin crashes a replica's node mid-load (twice,
// on a seed-jittered cadence), asserting the group keeps acknowledging
// writes throughout (eviction, not wedging) and the restarted member
// rejoins through its repair loop and converges to the same state.
func TestChaosReplicaCrashRejoin(t *testing.T) {
	leakCheck(t)
	seed := chaosSeed()
	w := newChaosRepWorld(t, 3)
	ctx := context.Background()
	p2 := w.proxy(t, 1)
	p3 := w.proxy(t, 2) // the crash victim

	acked := make(map[string]int64)
	var seq int64
	mustWrite := func() {
		key := fmt.Sprintf("w%d", seq)
		if _, err := p2.Invoke(ctx, "put", key, seq); err != nil {
			t.Fatalf("write %d through healthy proxy: %v", seq, err)
		}
		acked[key] = seq
		seq++
	}

	for round := 0; round < 2; round++ {
		for i := 0; i < 5; i++ {
			mustWrite()
		}
		w.c.net.Crash(3)
		// The group must not wedge: every write keeps acknowledging while
		// the member is down (first one pays the eviction timeout).
		downWrites := 8 + int(seed%5) + round
		for i := 0; i < downWrites; i++ {
			mustWrite()
		}
		w.c.net.Restart(3)
		chaosWaitFor(t, 10*time.Second, "restarted replica to rejoin and converge", func() bool {
			return p3.AppliedSeq() == p2.AppliedSeq()
		})
	}

	// Zero lost acked writes, on the survivor and the twice-crashed
	// member alike.
	for _, p := range []*replica.Proxy{p2, p3} {
		reg := p.Local().(*chaosReg)
		for key, want := range acked {
			if got, ok := reg.get(key); !ok || got != want {
				t.Fatalf("acked write %s=%d missing after crash-rejoin (got %d, present=%v)", key, want, got, ok)
			}
		}
	}
	if p3.Epoch() != p2.Epoch() {
		t.Errorf("epochs diverged after rejoin: %d vs %d", p3.Epoch(), p2.Epoch())
	}
	t.Logf("seed %d: %d writes acked across 2 crash-rejoin cycles", seed, seq)
}
