// Typedcalc: generated stubs over the proxy runtime.
//
// internal/gen/sample declares the Calculator interface with a
// //proxygen:service marker; cmd/proxygen generated CalculatorClient (the
// typed client wrapper) and NewCalculatorDispatcher (the core.Service
// adapter). This example wires a real implementation behind the
// dispatcher on one node and drives it through the typed client from
// another — no []any in sight, exactly the stub-compiler workflow of the
// paper's era.
//
//	go run ./examples/typedcalc
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/gen/sample"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// calcService implements sample.Calculator.
type calcService struct {
	total int64
}

func (c *calcService) Add(ctx context.Context, a, b int64) (int64, error) {
	c.total += a + b
	return a + b, nil
}

func (c *calcService) Concat(ctx context.Context, parts []string, sep string) (string, error) {
	if len(parts) == 0 {
		return "", errors.New("nothing to concat")
	}
	return strings.Join(parts, sep), nil
}

func (c *calcService) Translate(ctx context.Context, p sample.Point, dx, dy int64) (sample.Point, int64, error) {
	out := sample.Point{X: p.X + dx, Y: p.Y + dy}
	n := out.X + out.Y
	if n < 0 {
		n = -n
	}
	return out, n, nil
}

func (c *calcService) Reset(ctx context.Context) error {
	c.total = 0
	return nil
}

func (c *calcService) Total(ctx context.Context) (int64, error) {
	return c.total, nil
}

func main() {
	net := netsim.New(netsim.WithDefaultLink(netsim.LinkConfig{Latency: time.Millisecond}))
	defer net.Close()
	server := makeRuntime(net, 1)
	client := makeRuntime(net, 2)

	// The dispatcher adapts the typed implementation to the dynamic
	// invocation path; the export is protected for good measure.
	ref, err := server.Export(sample.NewCalculatorDispatcher(&calcService{}), "Calculator", core.Protected())
	if err != nil {
		log.Fatal(err)
	}
	p, err := client.Import(ref)
	if err != nil {
		log.Fatal(err)
	}
	calc := sample.CalculatorClient{P: p}
	ctx := context.Background()

	sum, err := calc.Add(ctx, 2, 40)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Add(2, 40)                = %d\n", sum)

	s, err := calc.Concat(ctx, []string{"proxy", "principle"}, " ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Concat([proxy principle]) = %q\n", s)

	pt, norm, err := calc.Translate(ctx, sample.Point{X: 3, Y: 4}, 10, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Translate({3,4}, 10, 20)  = %+v, norm %d\n", pt, norm)

	total, err := calc.Total(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Total()                   = %d\n", total)

	// Typed errors are still InvokeErrors underneath.
	if _, err := calc.Concat(ctx, nil, "-"); err != nil {
		fmt.Printf("Concat(nil) error         = %v\n", err)
	}
}

func makeRuntime(net *netsim.Network, id wire.NodeID) *core.Runtime {
	ep, err := net.Attach(id)
	if err != nil {
		log.Fatal(err)
	}
	node := kernel.NewNode(ep)
	ktx, err := node.NewContext()
	if err != nil {
		log.Fatal(err)
	}
	return core.NewRuntime(ktx)
}
