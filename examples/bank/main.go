// Bank: exactly-once-looking transfers over a terrible network.
//
// A bank service on node 1; a client on node 2 issues transfers across a
// link that drops 30% of all frames. The client's stub retransmits; the
// server's at-most-once filter (duplicate suppression + reply cache)
// guarantees each transfer executes exactly once despite the
// retransmission storm — the invariant the final audit checks.
//
//	go run ./examples/bank
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/rpc"
	"repro/internal/wire"
)

// bankService holds accounts; transfer is not idempotent, which is what
// makes at-most-once matter.
type bankService struct {
	mu       sync.Mutex
	accounts map[string]int64
	executed int64
}

func (b *bankService) Invoke(ctx context.Context, method string, args []any) ([]any, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch method {
	case "balance":
		who, _ := args[0].(string)
		return []any{b.accounts[who]}, nil
	case "transfer":
		from, _ := args[0].(string)
		to, _ := args[1].(string)
		amount, _ := args[2].(int64)
		if b.accounts[from] < amount {
			return nil, core.Errorf(core.CodeApp, method, "insufficient funds in %s", from)
		}
		b.executed++
		b.accounts[from] -= amount
		b.accounts[to] += amount
		return []any{b.accounts[from], b.accounts[to]}, nil
	case "audit":
		var total int64
		for _, v := range b.accounts {
			total += v
		}
		return []any{total, b.executed}, nil
	default:
		return nil, core.NoSuchMethod(method)
	}
}

func main() {
	// 30% loss in both directions, 2 ms latency, seeded for repeatability.
	net := netsim.New(
		netsim.WithDefaultLink(netsim.LinkConfig{Latency: 2 * time.Millisecond, LossRate: 0.3}),
		netsim.WithSeed(7),
	)
	defer net.Close()

	server := makeRuntime(net, 1, nil)
	// The client's rpc layer retries aggressively: 10 ms retry interval,
	// up to 100 attempts per call.
	client := makeRuntime(net, 2, []rpc.ClientOption{
		rpc.WithRetryInterval(10 * time.Millisecond),
		rpc.WithMaxAttempts(100),
	})

	// A bank deserves a protected export: the reference carries an
	// unforgeable capability token, so knowing the bank's address is not
	// enough to move money.
	bank := &bankService{accounts: map[string]int64{"alice": 1000, "bob": 1000}}
	ref, err := server.Export(bank, "Bank", core.Protected())
	if err != nil {
		log.Fatal(err)
	}
	proxy, err := client.Import(ref)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// An attacker who guessed the address but holds no capability is
	// turned away before the service ever runs.
	forged := ref
	forged.Cap = 0
	if _, err := core.NewStub(client, forged).Invoke(ctx, "transfer", "alice", "bob", int64(1000)); err != nil {
		fmt.Printf("forged reference rejected: %v\n", err)
	} else {
		log.Fatal("forged reference was accepted!")
	}

	const transfers = 25
	fmt.Printf("issuing %d transfers of 10 from alice to bob over a 30%%-loss link...\n", transfers)
	start := time.Now()
	for i := 0; i < transfers; i++ {
		if _, err := proxy.Invoke(ctx, "transfer", "alice", "bob", int64(10)); err != nil {
			log.Fatalf("transfer %d: %v", i, err)
		}
	}
	elapsed := time.Since(start)

	res, err := proxy.Invoke(ctx, "audit")
	if err != nil {
		log.Fatal(err)
	}
	total, executed := res[0].(int64), res[1].(int64)
	aliceRes, _ := proxy.Invoke(ctx, "balance", "alice")
	bobRes, _ := proxy.Invoke(ctx, "balance", "bob")

	st := client.Client().Stats()
	fmt.Printf("done in %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("client sent %d calls with %d retransmissions\n", st.Calls, st.Retransmits)
	fmt.Printf("server executed %d transfers (want exactly %d)\n", executed, transfers)
	fmt.Printf("alice=%v bob=%v total=%v (money is conserved)\n", aliceRes[0], bobRes[0], total)
	if executed != transfers || total != 2000 {
		log.Fatal("INVARIANT VIOLATED")
	}
	fmt.Println("at-most-once held: every transfer executed exactly once")
}

func makeRuntime(net *netsim.Network, id wire.NodeID, cliOpts []rpc.ClientOption) *core.Runtime {
	ep, err := net.Attach(id)
	if err != nil {
		log.Fatal(err)
	}
	node := kernel.NewNode(ep)
	ktx, err := node.NewContext()
	if err != nil {
		log.Fatal(err)
	}
	if cliOpts != nil {
		return core.NewRuntime(ktx, core.WithClient(rpc.NewClient(ktx, cliOpts...)))
	}
	return core.NewRuntime(ktx)
}
