// Newsfeed: publish/subscribe through reference-passing.
//
// A topic lives on node 1. Subscribers on nodes 2 and 3 pass *references*
// to their callback objects when subscribing; the topic turns them into
// proxies and publishes through them. One event even carries a live
// service reference — the subscribers invoke it on arrival, showing
// capabilities travelling inside events.
//
//	go run ./examples/newsfeed
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/pubsub"
	"repro/internal/wire"
)

func main() {
	net := netsim.New(netsim.WithDefaultLink(netsim.LinkConfig{Latency: 2 * time.Millisecond}))
	defer net.Close()

	hub := makeRuntime(net, 1)
	alice := makeRuntime(net, 2)
	bob := makeRuntime(net, 3)

	topic := pubsub.NewTopic("headlines")
	defer topic.Close()
	topicRef, err := hub.Export(topic, pubsub.TypeName)
	if err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	subscribe := func(rt *core.Runtime, who string) *pubsub.Client {
		p, err := rt.Import(topicRef)
		if err != nil {
			log.Fatal(err)
		}
		client := pubsub.NewClient(p)
		cb := pubsub.NewCallback(func(topic string, event any) {
			defer wg.Done()
			switch e := event.(type) {
			case core.Proxy:
				// The event is a capability: invoke it.
				res, err := e.Invoke(context.Background(), "read")
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("[%s] %s: attached story says %q\n", topic, who, res[0])
			default:
				fmt.Printf("[%s] %s: %v\n", topic, who, e)
			}
		})
		if _, err := client.Subscribe(context.Background(), cb); err != nil {
			log.Fatal(err)
		}
		return client
	}

	aliceClient := subscribe(alice, "alice")
	_ = subscribe(bob, "bob")
	ctx := context.Background()

	wg.Add(2)
	if err := aliceClient.Publish(ctx, "proxies considered wonderful"); err != nil {
		log.Fatal(err)
	}
	wg.Wait()

	// Publish an event that IS a reference: a story object on the hub.
	story := core.ServiceFunc(func(ctx context.Context, method string, args []any) ([]any, error) {
		return []any{"the full text, served by reference"}, nil
	})
	storyRef, err := hub.Export(story, "Story")
	if err != nil {
		log.Fatal(err)
	}
	storyProxy, err := hub.Import(storyRef)
	if err != nil {
		log.Fatal(err)
	}
	wg.Add(2)
	if err := aliceClient.Publish(ctx, storyProxy); err != nil {
		log.Fatal(err)
	}
	wg.Wait()

	st := topic.Stats()
	fmt.Printf("topic stats: %d published, %d delivered, %d subscribers\n",
		st.Published, st.Delivered, st.Subscribers)
}

func makeRuntime(net *netsim.Network, id wire.NodeID) *core.Runtime {
	ep, err := net.Attach(id)
	if err != nil {
		log.Fatal(err)
	}
	node := kernel.NewNode(ep)
	ktx, err := node.NewContext()
	if err != nil {
		log.Fatal(err)
	}
	return core.NewRuntime(ktx)
}
