// Directory: a replicated name service.
//
// The name service is itself an ordinary object — and because it is
// read-dominated, the service exports itself through replica.Factory:
// every importing context gets a *full local replica* behind its proxy.
// Lookups are local calls; binds are ordered through the primary and
// pushed to every replica before they return.
//
// The demo binds real services in the directory, resolves them by name on
// another node, and shows lookup latency before/after replication.
//
//	go run ./examples/directory
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/naming"
	"repro/internal/netsim"
	"repro/internal/replica"
	"repro/internal/wire"
)

func main() {
	net := netsim.New(netsim.WithDefaultLink(netsim.LinkConfig{Latency: 3 * time.Millisecond}))
	defer net.Close()

	// The directory's factory: lookup and list replicate as reads.
	factory := replica.NewFactory(
		[]string{"lookup", "list"},
		func() replica.StateMachine { return naming.NewDirectory() },
	)

	nsNode := makeRuntime(net, 1, factory)
	appNode := makeRuntime(net, 2, factory)
	workerNode := makeRuntime(net, 3, factory)

	dir := naming.NewDirectory()
	dirRef, err := nsNode.Export(dir, naming.TypeName)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// The app node exports two services and binds them by name.
	appDir, err := appNode.Import(dirRef)
	if err != nil {
		log.Fatal(err)
	}
	appClient := naming.NewClient(appDir)

	greeter := core.ServiceFunc(func(ctx context.Context, method string, args []any) ([]any, error) {
		name, _ := args[0].(string)
		return []any{"hello, " + name}, nil
	})
	clock := core.ServiceFunc(func(ctx context.Context, method string, args []any) ([]any, error) {
		return []any{time.Now().UTC().Format(time.RFC3339Nano)}, nil
	})
	for name, svc := range map[string]core.Service{
		"services/greeter": greeter,
		"services/clock":   clock,
	} {
		ref, err := appNode.Export(svc, "Generic")
		if err != nil {
			log.Fatal(err)
		}
		if err := appClient.Bind(ctx, name, ref, 0); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("bound %s\n", name)
	}

	// The worker node resolves by name. Its directory proxy is a replica:
	// the first Import paid one snapshot transfer; every lookup after
	// that is a local call.
	workerDir, err := workerNode.Import(dirRef)
	if err != nil {
		log.Fatal(err)
	}
	workerClient := naming.NewClient(workerDir)

	names, err := workerClient.List(ctx, "services")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("worker sees %v\n", names)

	start := time.Now()
	const lookups = 100
	for i := 0; i < lookups; i++ {
		if _, err := workerClient.Lookup(ctx, "services/greeter"); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("%d lookups in %v (replica proxy: local reads)\n", lookups, time.Since(start).Round(time.Microsecond))

	// Resolve → live proxy → invoke.
	g, err := workerClient.Resolve(ctx, workerNode, "services/greeter")
	if err != nil {
		log.Fatal(err)
	}
	res, err := g.Invoke(ctx, "greet", "worker-3")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greeter says: %v\n", res[0])

	// Rebinding propagates to every replica before Bind returns.
	ref2, _ := appNode.Export(core.ServiceFunc(func(ctx context.Context, method string, args []any) ([]any, error) {
		return []any{"v2"}, nil
	}), "Generic")
	if err := appClient.Bind(ctx, "services/greeter", ref2, 0); err != nil {
		log.Fatal(err)
	}
	got, err := workerClient.Lookup(ctx, "services/greeter")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after rebind, worker resolves greeter to %s (no stale read)\n", got)

	if rp, ok := workerDir.(*replica.Proxy); ok {
		reads, writes, applied := rp.Stats()
		fmt.Printf("worker's directory proxy: %d local reads, %d writes sent, %d updates applied\n", reads, writes, applied)
	}
}

func makeRuntime(net *netsim.Network, id wire.NodeID, factory *replica.Factory) *core.Runtime {
	ep, err := net.Attach(id)
	if err != nil {
		log.Fatal(err)
	}
	node := kernel.NewNode(ep)
	ktx, err := node.NewContext()
	if err != nil {
		log.Fatal(err)
	}
	rt := core.NewRuntime(ktx)
	rt.RegisterProxyType(naming.TypeName, factory)
	return rt
}
