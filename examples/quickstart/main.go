// Quickstart: the proxy principle in ~100 lines.
//
// Two nodes on a simulated network. Node 1 exports a counter service; node
// 2 resolves it and invokes it through a proxy. The client code is
// identical whether the object is local or remote — that is the point.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// counterService is an ordinary object: methods dispatched by name.
type counterService struct {
	n int64
}

func (c *counterService) Invoke(ctx context.Context, method string, args []any) ([]any, error) {
	switch method {
	case "add":
		d, ok := args[0].(int64)
		if !ok {
			return nil, core.BadArgs(method, "want int64")
		}
		c.n += d
		return []any{c.n}, nil
	case "get":
		return []any{c.n}, nil
	default:
		return nil, core.NoSuchMethod(method)
	}
}

func main() {
	// A two-node network with 1 ms of one-way latency — a small LAN.
	net := netsim.New(netsim.WithDefaultLink(netsim.LinkConfig{Latency: time.Millisecond}))
	defer net.Close()

	serverRT := makeRuntime(net, 1)
	clientRT := makeRuntime(net, 2)

	// The service side: export the object. The returned Ref is the
	// capability a client needs — in a real deployment it would be bound
	// in the name service (see examples/directory).
	ref, err := serverRT.Export(&counterService{}, "Counter")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exported counter as %s\n", ref)

	// The client side: importing the reference installs a proxy. The
	// default proxy is a stub — invocations marshal, cross the network,
	// and unmarshal, but none of that is visible here.
	proxy, err := clientRT.Import(ref)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		res, err := proxy.Invoke(ctx, "add", int64(10))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("add(10) -> %v\n", res[0])
	}
	res, err := proxy.Invoke(ctx, "get")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("get()   -> %v\n", res[0])

	// The same Import on the server side short-circuits to a direct call:
	// co-located clients pay nothing for the abstraction.
	local, err := serverRT.Import(ref)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if _, err := local.Invoke(ctx, "get"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("co-located get() took %v (bypass proxy, no marshalling)\n", time.Since(start))
}

func makeRuntime(net *netsim.Network, id wire.NodeID) *core.Runtime {
	ep, err := net.Attach(id)
	if err != nil {
		log.Fatal(err)
	}
	node := kernel.NewNode(ep)
	ktx, err := node.NewContext()
	if err != nil {
		log.Fatal(err)
	}
	return core.NewRuntime(ktx)
}
