// Filecache: the paper's canonical smart proxy — a remote file service
// whose *service-provided* proxy caches reads.
//
// A file server on node 1 exports files through cache.Factory. Two client
// nodes read and write them. The clients' code never mentions caching:
// the service chose the proxy, and the proxy–server coherence protocol
// (registration, versioned reads, callback invalidations) is private to
// the service. Watch the latency numbers: cold reads pay the 5 ms wire,
// warm reads are served locally, and a write on one node invalidates the
// other node's cache before it returns.
//
//	go run ./examples/filecache
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// fileService stores whole files by path: read/stat are cacheable reads,
// write is a write.
type fileService struct {
	mu    sync.Mutex
	files map[string][]byte
}

func (s *fileService) Invoke(ctx context.Context, method string, args []any) ([]any, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch method {
	case "read":
		path, _ := args[0].(string)
		data, ok := s.files[path]
		if !ok {
			return nil, core.Errorf(core.CodeApp, method, "no such file %q", path)
		}
		return []any{append([]byte(nil), data...)}, nil
	case "stat":
		path, _ := args[0].(string)
		data, ok := s.files[path]
		if !ok {
			return nil, core.Errorf(core.CodeApp, method, "no such file %q", path)
		}
		return []any{int64(len(data))}, nil
	case "write":
		path, _ := args[0].(string)
		data, _ := args[1].([]byte)
		s.files[path] = append([]byte(nil), data...)
		return []any{int64(len(data))}, nil
	default:
		return nil, core.NoSuchMethod(method)
	}
}

func main() {
	// 5 ms links: remote calls visibly cost something.
	net := netsim.New(netsim.WithDefaultLink(netsim.LinkConfig{Latency: 5 * time.Millisecond}))
	defer net.Close()

	// The service side decides its distribution strategy: callback-
	// invalidation caching over reads and stats.
	factory := cache.NewFactory([]string{"read", "stat"})

	server := makeRuntime(net, 1, factory)
	alice := makeRuntime(net, 2, factory)
	bob := makeRuntime(net, 3, factory)

	fs := &fileService{files: map[string][]byte{
		"/etc/motd": []byte("welcome to the proxy principle\n"),
	}}
	ref, err := server.Export(fs, "FileService")
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	aliceFS, err := alice.Import(ref)
	if err != nil {
		log.Fatal(err)
	}
	bobFS, err := bob.Import(ref)
	if err != nil {
		log.Fatal(err)
	}

	read := func(who string, p core.Proxy) {
		start := time.Now()
		res, err := p.Invoke(ctx, "read", "/etc/motd")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s read %d bytes in %8v\n", who, len(res[0].([]byte)), time.Since(start).Round(time.Microsecond))
	}

	fmt.Println("-- cold reads (cross the wire) --")
	read("alice", aliceFS)
	read("bob", bobFS)

	fmt.Println("-- warm reads (served by the caching proxy) --")
	for i := 0; i < 3; i++ {
		read("alice", aliceFS)
	}

	fmt.Println("-- bob writes; alice's cache is invalidated before the write returns --")
	start := time.Now()
	if _, err := bobFS.Invoke(ctx, "write", "/etc/motd", []byte("MOTD v2: smart proxies at work\n")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bob's write took %v (includes pushing the invalidation)\n", time.Since(start).Round(time.Microsecond))

	read("alice", aliceFS) // cold again: the new contents
	res, _ := aliceFS.Invoke(ctx, "read", "/etc/motd")
	fmt.Printf("alice now sees: %s", res[0].([]byte))

	if cp, ok := aliceFS.(*cache.Proxy); ok {
		st := cp.Stats()
		fmt.Printf("alice's proxy: %d hits, %d misses, %d invalidations\n", st.Hits, st.Misses, st.Invalidations)
	}
}

func makeRuntime(net *netsim.Network, id wire.NodeID, factory *cache.Factory) *core.Runtime {
	ep, err := net.Attach(id)
	if err != nil {
		log.Fatal(err)
	}
	node := kernel.NewNode(ep)
	ktx, err := node.NewContext()
	if err != nil {
		log.Fatal(err)
	}
	rt := core.NewRuntime(ktx)
	rt.RegisterProxyType("FileService", factory)
	return rt
}
