// Migration: mailboxes that move toward their readers.
//
// A mail hub on node 1 creates a mailbox per user. Users read their own
// mailbox far more often than anyone else touches it, so the mailbox
// exports through migrate.Factory: after a few remote invocations the
// user's proxy pulls the object into the user's own context, and reads
// become direct calls. Old references (the hub's, other users') keep
// working through forwarding tombstones.
//
//	go run ./examples/migration
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/migrate"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// mailbox is a migratable object: per-user message queue.
type mailbox struct {
	mu    sync.Mutex
	Owner string
	Queue []string
}

func (m *mailbox) Invoke(ctx context.Context, method string, args []any) ([]any, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch method {
	case "deposit":
		msg, _ := args[0].(string)
		m.Queue = append(m.Queue, msg)
		return []any{int64(len(m.Queue))}, nil
	case "readAll":
		out := make([]any, len(m.Queue))
		for i, s := range m.Queue {
			out[i] = s
		}
		m.Queue = m.Queue[:0]
		return []any{out}, nil
	case "pending":
		return []any{int64(len(m.Queue))}, nil
	default:
		return nil, core.NoSuchMethod(method)
	}
}

func (m *mailbox) Snapshot() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return codec.Marshal(struct {
		Owner string
		Queue []string
	}{m.Owner, m.Queue})
}

func (m *mailbox) Restore(data []byte) error {
	var st struct {
		Owner string
		Queue []string
	}
	if err := codec.Unmarshal(data, &st); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Owner, m.Queue = st.Owner, st.Queue
	return nil
}

func main() {
	net := netsim.New(netsim.WithDefaultLink(netsim.LinkConfig{Latency: 4 * time.Millisecond}))
	defer net.Close()

	// Pull after 3 remote invocations.
	factory := migrate.NewFactory("Mailbox", migrate.WithThreshold(3))

	hub := makeRuntime(net, 1, factory)
	alice := makeRuntime(net, 2, factory)

	// The hub creates alice's mailbox and deposits some mail.
	box := &mailbox{Owner: "alice"}
	ref, err := hub.Export(box, "Mailbox")
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	hubBox, err := hub.Import(ref) // bypass: hub is co-located (for now)
	if err != nil {
		log.Fatal(err)
	}
	for _, msg := range []string{"meeting at 10", "lunch?", "ship it"} {
		if _, err := hubBox.Invoke(ctx, "deposit", msg); err != nil {
			log.Fatal(err)
		}
	}

	// Alice polls her mailbox. Watch the per-call latency: remote at
	// first, then the proxy pulls the object home and calls go direct.
	aliceBox, err := alice.Import(ref)
	if err != nil {
		log.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		start := time.Now()
		res, err := aliceBox.Invoke(ctx, "pending")
		if err != nil {
			log.Fatal(err)
		}
		where := "remote"
		if mp, ok := aliceBox.(*migrate.Proxy); ok && mp.IsLocal() {
			where = "LOCAL"
		}
		fmt.Printf("poll %d: pending=%v in %8v (%s)\n", i, res[0], time.Since(start).Round(time.Microsecond), where)
	}

	res, err := aliceBox.Invoke(ctx, "readAll")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice reads her mail locally: %v\n", res[0])

	// The hub's old reference still works — its frames chase the
	// forwarding tombstone to alice's node.
	start := time.Now()
	if _, err := hubBox.Invoke(ctx, "deposit", "one more thing"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hub deposits through its old reference in %v (forwarded + rebound)\n", time.Since(start).Round(time.Microsecond))

	res, err = aliceBox.Invoke(ctx, "pending")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice sees %v pending — same object, new home\n", res[0])
}

func makeRuntime(net *netsim.Network, id wire.NodeID, factory *migrate.Factory) *core.Runtime {
	ep, err := net.Attach(id)
	if err != nil {
		log.Fatal(err)
	}
	node := kernel.NewNode(ep)
	ktx, err := node.NewContext()
	if err != nil {
		log.Fatal(err)
	}
	rt := core.NewRuntime(ktx)
	rt.RegisterProxyType("Mailbox", factory)
	host := migrate.NewHost(rt)
	host.RegisterType("Mailbox", func() migrate.Migratable { return &mailbox{} })
	factory.AttachHost(rt, host)
	return rt
}
