package repro

// Gray-failure chaos tests: nodes that are alive but WRONG — slow,
// lossy, corrupting, or reachable in only one direction. Crash-stop
// chaos (chaos_test.go) asks "does the system survive death?"; this
// suite asks the harder question from the gray-failure literature:
// does it survive a node that keeps answering, badly? The invariants:
//
//   - a 10×-slow node is scored, graded degraded, and ejected — the
//     cluster's tail latency stays bounded, while the same workload
//     without health scoring inherits the slow node's latency;
//   - a one-way partition is disambiguated from death by indirect
//     probes (peers can still reach the node) and reported as degraded
//     WITH direction, while writes reroute with zero acknowledged
//     losses;
//   - corrupted bytes on the wire are caught by the frame CRC and
//     healed by retransmission — never silently accepted;
//   - a replica group's live-but-degraded primary is demoted through
//     the epoch-fenced promotion path on sustained health evidence.
//
// Every test is seeded through CHAOS_SEED like the rest of the chaos
// suite and runs under `make chaos` (names start with TestChaosGray).

import (
	"context"
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/health"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/rpc"
	"repro/internal/wire"
)

// grayCluster is n runtimes (nodes 1..n) on one simulated network, each
// carrying a health monitor that watches every peer — the proxyd shape,
// with active probing, passive call evidence, and indirect probes all
// live. monInterval <= 0 builds the cluster WITHOUT monitors (the
// "ejection off" control).
type grayCluster struct {
	net  *netsim.Network
	obs  *obs.Observer
	rts  []*core.Runtime
	mons []*health.Monitor
}

func newGrayCluster(t *testing.T, n int, monInterval time.Duration,
	netOpts []netsim.NetworkOption, cliOpts []rpc.ClientOption,
	monOpts []health.MonitorOption, rtOpts ...core.RuntimeOption) *grayCluster {
	t.Helper()
	c := &grayCluster{
		net: netsim.New(append([]netsim.NetworkOption{netsim.WithSeed(chaosSeed())}, netOpts...)...),
		obs: obs.NewObserver(),
	}
	t.Cleanup(c.net.Close)
	for i := 1; i <= n; i++ {
		ep, err := c.net.Attach(wire.NodeID(i))
		if err != nil {
			t.Fatal(err)
		}
		node := kernelNodeForTest(t, ep)
		ktx, err := node.NewContext()
		if err != nil {
			t.Fatal(err)
		}
		opts := append([]core.RuntimeOption{
			core.WithObserver(c.obs),
			core.WithClient(rpc.NewClient(ktx, append(cliOpts, rpc.WithObserver(c.obs))...)),
		}, rtOpts...)
		if monInterval > 0 {
			mon := health.NewMonitor(ktx, append([]health.MonitorOption{
				health.WithInterval(monInterval),
				health.WithObserver(c.obs),
			}, monOpts...)...)
			t.Cleanup(func() { mon.Close() })
			c.mons = append(c.mons, mon)
			opts = append(opts, core.WithHealth(mon))
		}
		c.rts = append(c.rts, core.NewRuntime(ktx, opts...))
	}
	// Shut proxies down before their nodes close (cleanups run LIFO), so
	// proxy background loops stop on Close instead of outliving the test.
	t.Cleanup(func() {
		for _, rt := range c.rts {
			rt.CloseProxies()
		}
	})
	// Everyone watches everyone: probes prime the RTT population the
	// outlier model grades against, and give every monitor relay
	// candidates for indirect probing.
	for i, mon := range c.mons {
		for j := 1; j <= n; j++ {
			if j != i+1 {
				mon.Watch(wire.NodeID(j))
			}
		}
	}
	return c
}

// p99 returns the 99th-percentile of the recorded durations.
func p99(durs []time.Duration) time.Duration {
	if len(durs) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := len(sorted) * 99 / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// TestChaosGraySlowNodeEjection runs the same workload against a
// cluster whose primary KV node turns 10× slow, once with health
// scoring attached (the slow node is scored, and every call is steered
// to a healthy alternate before send) and once without (the control).
// With ejection the degraded-phase p99 stays under 2× the healthy
// baseline; without it the workload inherits the slow node's latency.
func TestChaosGraySlowNodeEjection(t *testing.T) {
	leakCheck(t)
	const (
		base  = 500 * time.Microsecond // healthy per-hop latency
		extra = 10 * base              // degradation: +10× base per hop
		ops   = 80
	)

	run := func(t *testing.T, withHealth bool) (p99Base, p99Degraded time.Duration, ejections uint64) {
		t.Helper()
		interval := time.Duration(0)
		if withHealth {
			interval = 40 * time.Millisecond // probe timeout 20ms > degraded RTT
		}
		c := newGrayCluster(t, 4, interval,
			[]netsim.NetworkOption{netsim.WithDefaultLink(netsim.LinkConfig{Latency: base})},
			[]rpc.ClientOption{rpc.WithRetryInterval(50 * time.Millisecond), rpc.WithMaxAttempts(4)},
			[]health.MonitorOption{health.WithOutlierFactor(1.5), health.WithEWMAAlpha(0.4)})
		slow, alt, client := c.rts[0], c.rts[1], c.rts[2]

		ref1, err := slow.Export(bench.NewKV(), "KV")
		if err != nil {
			t.Fatal(err)
		}
		ref2, err := alt.Export(bench.NewKV(), "KV")
		if err != nil {
			t.Fatal(err)
		}
		p, err := client.Import(ref1)
		if err != nil {
			t.Fatal(err)
		}
		stub := p.(*core.Stub)
		stub.SetAlternates([]codec.Ref{ref1, ref2})
		// put is deliberately NOT declared idempotent: pre-send ejection
		// happens before anything leaves the client, so it needs no replay
		// license — the point being that gray-failure steering protects
		// writes, not just reads.

		measure := func(phase string) []time.Duration {
			durs := make([]time.Duration, 0, ops)
			for i := 0; i < ops; i++ {
				start := time.Now()
				if _, err := stub.Invoke(context.Background(), "put", fmt.Sprintf("%s%d", phase, i%8), int64(i)); err != nil {
					t.Fatalf("%s write %d: %v", phase, i, err)
				}
				durs = append(durs, time.Since(start))
			}
			return durs
		}

		baseline := measure("b")
		c.net.DegradeNode(1, netsim.LinkCond{ExtraLatency: extra})
		if withHealth {
			// Wait for the client's monitor to grade node 1: EWMA RTT must
			// cross the outlier threshold against the peer median.
			mon := c.mons[2]
			converged := false
			for end := time.Now().Add(5 * time.Second); time.Now().Before(end); {
				if mon.Score(1) >= 0.75 {
					converged = true
					break
				}
				time.Sleep(10 * time.Millisecond)
			}
			if !converged {
				t.Fatalf("monitor never scored the slow node: status %+v", mon.Status(1))
			}
		}
		degraded := measure("d")
		ej := c.obs.Registry.Counter("core[" + client.Where() + "].invoke.ejections").Load()
		return p99(baseline), p99(degraded), ej
	}

	baseOn, degrOn, ejections := run(t, true)
	baseOff, degrOff, _ := run(t, false)
	t.Logf("ejection on:  p99 %v -> %v (%d ejections); ejection off: p99 %v -> %v",
		baseOn, degrOn, ejections, baseOff, degrOff)

	// With ejection: the degraded-phase tail must stay below the
	// degradation itself (ejected calls never pay the slow node's +10ms
	// round trip) and within 2× the healthy baseline, with a scheduling
	// floor so a fast machine cannot fail the ratio on noise.
	bound := 2 * baseOn
	if floor := extra; bound < floor {
		bound = floor
	}
	if degrOn > bound {
		t.Errorf("ejection on: degraded p99 %v exceeds bound %v (baseline %v)", degrOn, bound, baseOn)
	}
	if ejections == 0 {
		t.Error("ejection on: no pre-send ejections recorded — score never steered traffic")
	}
	// Without ejection the workload pays the slow node's latency: at
	// least one degraded round trip (2 hops × extra).
	if degrOff < 2*extra {
		t.Errorf("ejection off: degraded p99 %v — expected the slow node's >= %v round trip; control is not degrading", degrOff, 2*extra)
	}
	if degrOn >= degrOff {
		t.Errorf("ejection bought nothing: p99 %v with scoring vs %v without", degrOn, degrOff)
	}
}

// TestChaosGrayOneWayPartition cuts the client→server direction only,
// on a seeded schedule, and asserts the two halves of the tentpole:
// the client's monitor reports the server DEGRADED WITH DIRECTION
// (indirect probes through peers prove it alive, inbound frames prove
// our outbound leg is the broken one) within a bounded window instead
// of declaring it dead; and the write workload reroutes to an alternate
// with zero acknowledged writes lost.
func TestChaosGrayOneWayPartition(t *testing.T) {
	leakCheck(t)
	c := newGrayCluster(t, 4, 20*time.Millisecond,
		nil,
		[]rpc.ClientOption{rpc.WithRetryInterval(5 * time.Millisecond), rpc.WithMaxAttempts(4)},
		nil,
		core.WithBreakerConfig(health.BreakerConfig{Threshold: 2, Cooldown: 50 * time.Millisecond}))
	serverA, serverB, client := c.rts[0], c.rts[1], c.rts[2] // node 4 is a relay peer

	ref1, err := serverA.Export(bench.NewKV(), "KV")
	if err != nil {
		t.Fatal(err)
	}
	ref2, err := serverB.Export(bench.NewKV(), "KV")
	if err != nil {
		t.Fatal(err)
	}
	client.RegisterIdempotent("KV", "put", "get")
	p, err := client.Import(ref1)
	if err != nil {
		t.Fatal(err)
	}
	stub := p.(*core.Stub)
	stub.SetAlternates([]codec.Ref{ref1, ref2})

	const cutFor = 600 * time.Millisecond
	sched := &netsim.FaultSchedule{Events: []netsim.FaultEvent{
		{At: 50 * time.Millisecond, Kind: netsim.FaultPartitionOneWay, A: 3, B: 1},
		{At: 50*time.Millisecond + cutFor, Kind: netsim.FaultHeal, A: 3, B: 1},
	}}
	t.Logf("schedule (seed %d):\n%s", chaosSeed(), sched)
	run := sched.Run(c.net)

	// Writes ride through the cut: values are monotonic per key, and an
	// acknowledged write must survive on whichever server acked it.
	acked := make(map[string]int64)
	var seq int64
	deadline := time.Now().Add(50*time.Millisecond + cutFor + 100*time.Millisecond)
	for time.Now().Before(deadline) {
		key := fmt.Sprintf("w%d", seq%5)
		if _, err := stub.Invoke(context.Background(), "put", key, seq); err == nil {
			acked[key] = seq
		}
		seq++
	}
	run.Wait()

	// Direction verdict: the client's monitor must have graded node 1
	// degraded-outbound during the cut (we poll the terminal state too,
	// since the schedule has healed by now — the transition counter and
	// status history are not retained). Re-cut briefly to observe it.
	mon := c.mons[2]
	c.net.PartitionOneWay(3, 1)
	verdict := health.NodeStatus{}
	sawDirected := false
	for end := time.Now().Add(3 * time.Second); time.Now().Before(end); {
		verdict = mon.Status(1)
		if verdict.State == health.StateDegraded && verdict.Direction == health.DirectionOutbound {
			sawDirected = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !sawDirected {
		t.Errorf("one-way partition never graded degraded/outbound; last status %+v", verdict)
	}
	c.net.Heal(3, 1)

	// Recovery: with the path restored the verdict must return to alive.
	recovered := false
	for end := time.Now().Add(3 * time.Second); time.Now().Before(end); {
		if mon.State(1) == health.StateAlive {
			recovered = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !recovered {
		t.Errorf("node 1 never graded alive after heal: %+v", mon.Status(1))
	}

	// Zero lost acknowledged writes: the last acked value of every key
	// must be present on one of the two servers (whichever acked it).
	pa, err := serverA.Import(ref1) // bypass proxies: local dispatch
	if err != nil {
		t.Fatal(err)
	}
	pb, err := serverB.Import(ref2)
	if err != nil {
		t.Fatal(err)
	}
	if len(acked) == 0 {
		t.Fatal("no writes were acknowledged — workload never ran")
	}
	for key, want := range acked {
		found := false
		for _, srv := range []core.Proxy{pa, pb} {
			res, err := srv.Invoke(context.Background(), "get", key)
			if err == nil && len(res) > 0 {
				if got, ok := res[0].(int64); ok && got == want {
					found = true
					break
				}
			}
		}
		if !found {
			t.Errorf("acknowledged write %q=%d not found on any server", key, want)
		}
	}
	t.Logf("%d attempts, %d keys acked, %d failovers, final verdict %+v",
		seq, len(acked), stub.Failovers(), verdict)
}

// TestChaosGrayCorruptionHealed injects byte corruption on the only
// link and asserts the end-to-end story: every corrupted frame is
// caught by the wire CRC (netsim decodes each flipped frame with the
// real codec — a silent acceptance would deliver it) and dropped, rpc
// retransmission heals the loss, and the workload completes with every
// acknowledged write intact.
func TestChaosGrayCorruptionHealed(t *testing.T) {
	leakCheck(t)
	c := newGrayCluster(t, 2, 0,
		nil,
		[]rpc.ClientOption{rpc.WithRetryInterval(3 * time.Millisecond), rpc.WithMaxAttempts(100)},
		nil,
		core.WithBreakerConfig(health.BreakerConfig{Threshold: 1 << 30, Cooldown: time.Second}))
	server, client := c.rts[0], c.rts[1]

	ref, err := server.Export(bench.NewKV(), "KV")
	if err != nil {
		t.Fatal(err)
	}
	p, err := client.Import(ref)
	if err != nil {
		t.Fatal(err)
	}

	c.net.Degrade(1, 2, netsim.LinkCond{CorruptRate: 0.05})
	const writes = 150
	for i := 0; i < writes; i++ {
		key := fmt.Sprintf("k%d", i%10)
		if _, err := p.Invoke(context.Background(), "put", key, int64(i)); err != nil {
			t.Fatalf("write %d failed despite deep retry budget: %v", i, err)
		}
	}
	c.net.Restore(1, 2)

	for i := writes - 10; i < writes; i++ {
		key := fmt.Sprintf("k%d", i%10)
		res, err := p.Invoke(context.Background(), "get", key)
		if err != nil {
			t.Fatalf("read-back of %q: %v", key, err)
		}
		if got := res[0].(int64); got != int64(i) {
			t.Errorf("key %q = %d, want %d", key, got, i)
		}
	}

	stats := c.net.Snapshot()
	if stats.Corrupted == 0 {
		t.Error("no frames were corrupted — the fault never bit (rate too low for this seed?)")
	}
	t.Logf("net stats: %+v", stats)
}

// TestChaosGrayDegradedPrimaryDemotion turns a replica group's primary
// node 10× slow and asserts the repair loop escalates sustained health
// evidence to a demotion: the successor member promotes itself under
// epoch+1 (fencing the slow primary exactly like a crash promotion
// would), and writes keep flowing through the group afterwards.
func TestChaosGrayDegradedPrimaryDemotion(t *testing.T) {
	leakCheck(t)
	const base = 500 * time.Microsecond
	c := newGrayCluster(t, 3, 40*time.Millisecond,
		[]netsim.NetworkOption{netsim.WithDefaultLink(netsim.LinkConfig{Latency: base})},
		[]rpc.ClientOption{rpc.WithRetryInterval(20 * time.Millisecond), rpc.WithMaxAttempts(6)},
		[]health.MonitorOption{health.WithOutlierFactor(1.5), health.WithEWMAAlpha(0.4)})
	primaryRT, memberRT, clientRT := c.rts[0], c.rts[1], c.rts[2]

	factory := replica.NewFactory(bench.KVReads(),
		func() replica.StateMachine { return bench.NewKV() },
		replica.WithName("kv"),
		replica.WithSyncInterval(25*time.Millisecond))
	memberRT.RegisterProxyType("ReplicatedKV", factory)
	clientRT.RegisterProxyType("ReplicatedKV", factory)

	ref, err := primaryRT.ExportVia(factory, bench.NewKV(), "ReplicatedKV")
	if err != nil {
		t.Fatal(err)
	}
	// Join order fixes the successor: the member on node 2 joins first
	// and heads the primary's view.
	mp, err := memberRT.Import(ref)
	if err != nil {
		t.Fatal(err)
	}
	member := mp.(*replica.Proxy)
	cp, err := clientRT.Import(ref)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := cp.Invoke(context.Background(), "put", "seed", int64(1)); err != nil {
		t.Fatal(err)
	}
	epoch0 := member.Epoch()

	// The primary turns gray: alive, syncing, just 10× slow on every
	// link. Sustained degraded verdicts at the successor must escalate
	// to an election instead of waiting for a death that never comes.
	c.net.DegradeNode(1, netsim.LinkCond{ExtraLatency: 10 * base})

	promoted := false
	for end := time.Now().Add(10 * time.Second); time.Now().Before(end); {
		if member.IsPrimary() && member.Epoch() > epoch0 {
			promoted = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !promoted {
		t.Fatalf("successor never promoted: primary=%v epoch=%d (was %d), monitor says %+v",
			member.IsPrimary(), member.Epoch(), epoch0, c.mons[1].Status(1))
	}

	// The group still serves writes under the new epoch (the member's
	// own proxy reaches its co-located primary directly).
	if _, err := member.Invoke(context.Background(), "put", "after", int64(2)); err != nil {
		t.Fatalf("write after demotion: %v", err)
	}
	res, err := member.Invoke(context.Background(), "get", "after")
	if err != nil || len(res) == 0 || res[0].(int64) != 2 {
		t.Fatalf("read after demotion: res=%v err=%v", res, err)
	}
	t.Logf("demoted: epoch %d -> %d, successor on node 2 is primary", epoch0, member.Epoch())
}
